"""Hypothesis property-based tests for the core data structures and invariants.

These tests complement the example-based suites: they search the input space
for violations of the algebraic laws everything else relies on (Pauli group
structure, Clifford conjugation being a signed group automorphism, extraction
preserving the program unitary, GF(2) synthesis round-trips).
"""

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.circuits.circuit import QuantumCircuit
from repro.circuits.gate import Gate
from repro.circuits.statevector import circuits_equivalent
from repro.clifford.tableau import CliffordTableau
from repro.core.extraction import CliffordExtractor
from repro.linear.cnot_synthesis import cnot_network_matrix, synthesize_cnot_network
from repro.linear.gf2 import gf2_inverse, gf2_is_invertible, gf2_matvec
from repro.paulis.pauli import PauliString
from repro.paulis.term import PauliTerm
from repro.synthesis.trotter import synthesize_trotter_circuit
from repro.transpile.peephole import peephole_optimize

# --------------------------------------------------------------------------- #
# Strategies
# --------------------------------------------------------------------------- #
pauli_labels = st.integers(min_value=1, max_value=6).flatmap(
    lambda n: st.text(alphabet="IXYZ", min_size=n, max_size=n)
)


def paulis(num_qubits: int):
    return st.tuples(
        st.text(alphabet="IXYZ", min_size=num_qubits, max_size=num_qubits),
        st.sampled_from([1, -1]),
    ).map(lambda pair: PauliString.from_label(pair[0], sign=pair[1]))


def clifford_circuits(num_qubits: int, max_gates: int = 12):
    single = st.tuples(
        st.sampled_from(["h", "s", "sdg", "x", "y", "z", "sx", "sxdg"]),
        st.integers(0, num_qubits - 1),
    ).map(lambda pair: Gate(pair[0], (pair[1],)))
    if num_qubits > 1:
        two = st.tuples(
            st.sampled_from(["cx", "cz", "swap"]),
            st.permutations(range(num_qubits)).map(lambda p: (p[0], p[1])),
        ).map(lambda pair: Gate(pair[0], pair[1]))
        gate = st.one_of(single, two)
    else:
        gate = single
    return st.lists(gate, min_size=0, max_size=max_gates).map(
        lambda gates: QuantumCircuit(num_qubits, gates)
    )


def small_programs():
    def build(data):
        num_qubits, rows = data
        terms = []
        for label_bits, angle in rows:
            label = "".join("IXYZ"[b] for b in label_bits)
            if set(label) == {"I"}:
                label = "Z" + label[1:]
            terms.append(PauliTerm(PauliString.from_label(label), angle))
        return terms

    return st.integers(min_value=2, max_value=4).flatmap(
        lambda n: st.tuples(
            st.just(n),
            st.lists(
                st.tuples(
                    st.lists(st.integers(0, 3), min_size=n, max_size=n),
                    st.floats(-3.0, 3.0, allow_nan=False),
                ),
                min_size=1,
                max_size=5,
            ),
        )
    ).map(build)


# --------------------------------------------------------------------------- #
# Pauli algebra laws
# --------------------------------------------------------------------------- #
class TestPauliAlgebraProperties:
    @given(pauli_labels)
    def test_label_roundtrip(self, label):
        pauli = PauliString.from_label(label)
        assert PauliString.from_label(pauli.to_label()) == pauli

    @given(st.integers(2, 5).flatmap(lambda n: st.tuples(paulis(n), paulis(n))))
    def test_product_matches_matrices(self, pair):
        first, second = pair
        product = first @ second
        assert np.allclose(product.to_matrix(), first.to_matrix() @ second.to_matrix())

    @given(st.integers(2, 5).flatmap(lambda n: st.tuples(paulis(n), paulis(n))))
    def test_commutation_is_symmetric(self, pair):
        first, second = pair
        assert first.commutes_with(second) == second.commutes_with(first)

    @given(st.integers(2, 5).flatmap(lambda n: st.tuples(paulis(n), paulis(n), paulis(n))))
    def test_product_associative(self, triple):
        first, second, third = triple
        assert (first @ second) @ third == first @ (second @ third)

    @given(st.integers(1, 5).flatmap(paulis))
    def test_self_product_is_identity_up_to_phase(self, pauli):
        square = pauli @ pauli
        assert square.is_identity()

    @given(st.integers(1, 5).flatmap(paulis))
    def test_adjoint_is_involution(self, pauli):
        assert pauli.adjoint().adjoint() == pauli

    @given(st.integers(1, 5).flatmap(paulis))
    def test_weight_bounds(self, pauli):
        assert 0 <= pauli.weight <= pauli.num_qubits
        assert len(pauli.support) == pauli.weight


# --------------------------------------------------------------------------- #
# Clifford conjugation laws
# --------------------------------------------------------------------------- #
class TestCliffordProperties:
    @settings(deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(
        st.integers(2, 4).flatmap(
            lambda n: st.tuples(clifford_circuits(n), paulis(n), paulis(n))
        )
    )
    def test_conjugation_is_group_homomorphism(self, data):
        circuit, first, second = data
        tableau = CliffordTableau.from_circuit(circuit)
        left = tableau.conjugate(first @ second)
        right = tableau.conjugate(first) @ tableau.conjugate(second)
        assert left == right

    @settings(deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(st.integers(2, 4).flatmap(lambda n: st.tuples(clifford_circuits(n), paulis(n))))
    def test_conjugation_preserves_weight_of_identity_and_hermiticity(self, data):
        circuit, pauli = data
        image = CliffordTableau.from_circuit(circuit).conjugate(pauli)
        assert image.is_identity() == pauli.is_identity()
        assert image.is_hermitian() == pauli.is_hermitian()

    @settings(deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(st.integers(2, 4).flatmap(lambda n: st.tuples(clifford_circuits(n), paulis(n))))
    def test_inverse_circuit_undoes_conjugation(self, data):
        circuit, pauli = data
        forward = CliffordTableau.from_circuit(circuit)
        backward = CliffordTableau.from_circuit(circuit.inverse())
        assert backward.conjugate(forward.conjugate(pauli)) == pauli


# --------------------------------------------------------------------------- #
# Extraction and peephole invariants
# --------------------------------------------------------------------------- #
class TestCompilationProperties:
    @settings(deadline=None, max_examples=25, suppress_health_check=[HealthCheck.too_slow])
    @given(small_programs())
    def test_extraction_preserves_unitary(self, terms):
        result = CliffordExtractor().extract(terms)
        original = synthesize_trotter_circuit(terms)
        reconstructed = result.optimized_circuit.compose(result.extracted_clifford)
        assert circuits_equivalent(original, reconstructed)

    @settings(deadline=None, max_examples=25, suppress_health_check=[HealthCheck.too_slow])
    @given(small_programs())
    def test_extraction_emits_one_rotation_per_term(self, terms):
        result = CliffordExtractor().extract(terms)
        non_identity = sum(1 for term in terms if not term.pauli.is_identity())
        assert result.optimized_circuit.count_ops().get("rz", 0) == non_identity

    @settings(deadline=None, max_examples=20, suppress_health_check=[HealthCheck.too_slow])
    @given(st.integers(2, 4).flatmap(lambda n: clifford_circuits(n, max_gates=20)))
    def test_peephole_preserves_clifford_unitary(self, circuit):
        optimized = peephole_optimize(circuit)
        assert len(optimized) <= len(circuit)
        assert circuits_equivalent(circuit, optimized)


# --------------------------------------------------------------------------- #
# GF(2) linear algebra invariants
# --------------------------------------------------------------------------- #
def invertible_gf2_matrices(size: int):
    def to_matrix(circuit_spec):
        matrix = np.eye(size, dtype=bool)
        for control, target in circuit_spec:
            if control != target:
                matrix[target] ^= matrix[control]
        return matrix

    return st.lists(
        st.tuples(st.integers(0, size - 1), st.integers(0, size - 1)),
        min_size=0,
        max_size=3 * size,
    ).map(to_matrix)


class TestLinearProperties:
    @settings(deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(st.integers(2, 6).flatmap(invertible_gf2_matrices))
    def test_synthesis_roundtrip(self, matrix):
        circuit = synthesize_cnot_network(matrix)
        assert np.array_equal(cnot_network_matrix(circuit), matrix)

    @settings(deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(
        st.integers(2, 6).flatmap(
            lambda n: st.tuples(
                invertible_gf2_matrices(n),
                st.lists(st.booleans(), min_size=n, max_size=n),
            )
        )
    )
    def test_inverse_undoes_matvec(self, data):
        matrix, vector_bits = data
        assert gf2_is_invertible(matrix)
        vector = np.array(vector_bits, dtype=bool)
        image = gf2_matvec(matrix, vector)
        assert np.array_equal(gf2_matvec(gf2_inverse(matrix), image), vector)
