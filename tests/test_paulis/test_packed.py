"""Tests for the bit-packed symplectic store (repro.paulis.packed).

The property-based classes are the round-trip guarantee of the packed
representation: any Pauli that can be written as a label must survive
``label -> PackedPauliTable -> PauliString -> label`` bit-for-bit, across
word boundaries (64/65/128 qubits) and for every phase.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuits.gate import Gate
from repro.clifford.conjugation import apply_gate_to_rows
from repro.exceptions import PauliError
from repro.paulis.packed import (
    PackedPauliTable,
    pack_bits,
    unpack_bits,
    words_for_qubits,
)
from repro.paulis.pauli import PauliString
from repro.paulis.sum import SparsePauliSum
from repro.paulis.term import PauliTerm

from tests.conftest import random_pauli

# Label batches whose qubit count deliberately straddles uint64 word
# boundaries (1..4, 63..66, 127..130 all appear).
label_batches = st.integers(min_value=1, max_value=130).flatmap(
    lambda n: st.lists(
        st.text(alphabet="IXYZ", min_size=n, max_size=n), min_size=1, max_size=8
    )
)


class TestBitPacking:
    @given(
        st.lists(st.booleans(), min_size=1, max_size=200).map(
            lambda bits: np.array(bits, dtype=bool)
        )
    )
    def test_pack_unpack_roundtrip_1d(self, bits):
        words = pack_bits(bits)
        assert words.dtype == np.uint64
        assert words.shape == (words_for_qubits(len(bits)),)
        assert np.array_equal(unpack_bits(words, len(bits)), bits)

    def test_pack_unpack_roundtrip_2d(self, rng):
        for num_qubits in (1, 7, 63, 64, 65, 128, 129):
            bits = rng.random((5, num_qubits)) < 0.5
            words = pack_bits(bits)
            assert words.shape == (5, words_for_qubits(num_qubits))
            assert np.array_equal(unpack_bits(words, num_qubits), bits)

    def test_bit_layout(self):
        # Qubit q lives in bit q & 63 of word q >> 6.
        bits = np.zeros(70, dtype=bool)
        bits[3] = True
        bits[69] = True
        words = pack_bits(bits)
        assert words[0] == np.uint64(1) << np.uint64(3)
        assert words[1] == np.uint64(1) << np.uint64(5)


class TestTableRoundTrip:
    @settings(max_examples=60)
    @given(label_batches)
    def test_labels_roundtrip_through_table(self, labels):
        paulis = [PauliString.from_label(label) for label in labels]
        table = PackedPauliTable.from_paulis(paulis)
        assert table.to_paulis() == paulis
        assert [p.to_label() for p in table.to_paulis()] == labels

    @settings(max_examples=40)
    @given(label_batches, st.integers(min_value=0, max_value=3))
    def test_phases_survive(self, labels, phase):
        paulis = [PauliString.from_label(label).multiply_phase(phase) for label in labels]
        table = PackedPauliTable.from_paulis(paulis)
        assert table.to_paulis() == paulis

    def test_bool_array_roundtrip(self, rng):
        for num_qubits in (1, 64, 65, 100):
            x = rng.random((6, num_qubits)) < 0.5
            z = rng.random((6, num_qubits)) < 0.5
            phases = rng.integers(0, 4, size=6)
            table = PackedPauliTable.from_bool_arrays(x, z, phases)
            ux, uz, uphases = table.to_bool_arrays()
            assert np.array_equal(ux, x)
            assert np.array_equal(uz, z)
            assert np.array_equal(uphases, phases)

    def test_row_matches_pauli(self, rng):
        paulis = [random_pauli(rng, 70) for _ in range(10)]
        table = PackedPauliTable.from_paulis(paulis)
        for index, pauli in enumerate(paulis):
            assert table.row(index) == pauli

    def test_from_empty_rejected(self):
        with pytest.raises(PauliError):
            PackedPauliTable.from_paulis([])

    def test_inconsistent_sizes_rejected(self):
        with pytest.raises(PauliError):
            PackedPauliTable.from_paulis(
                [PauliString.from_label("XX"), PauliString.from_label("X")]
            )


class TestVectorizedMetrics:
    def test_weights_and_num_y(self, rng):
        paulis = [random_pauli(rng, 67) for _ in range(12)]
        table = PackedPauliTable.from_paulis(paulis)
        assert list(table.weights()) == [p.weight for p in paulis]
        assert list(table.num_y()) == [p.num_y for p in paulis]

    def test_hermitian_mask_and_signs(self):
        paulis = [
            PauliString.from_label("XYZ"),
            PauliString.from_label("-XYZ"),
            PauliString.from_label("+iZZZ"),
        ]
        table = PackedPauliTable.from_paulis(paulis)
        assert list(table.hermitian_mask()) == [True, True, False]
        assert table.signs()[0] == 0
        assert table.signs()[1] == 2

    def test_bare_resets_signs(self):
        table = PackedPauliTable.from_paulis(
            [PauliString.from_label("-XY"), PauliString.from_label("ZZ")]
        )
        for row in table.bare().to_paulis():
            assert row.sign == 1


class TestVectorizedGates:
    """The packed per-gate rules must match the legacy boolean-array rules."""

    GATES_1Q = ["i", "h", "s", "sdg", "sx", "sxdg", "x", "y", "z"]
    GATES_2Q = ["cx", "cz", "swap"]

    def test_single_qubit_gates_match_legacy(self, rng):
        for name in self.GATES_1Q:
            for num_qubits in (1, 64, 70):
                paulis = [random_pauli(rng, num_qubits) for _ in range(6)]
                qubit = int(rng.integers(num_qubits))
                gate = Gate(name, (qubit,))
                table = PackedPauliTable.from_paulis(paulis)
                table.apply_gate(gate)
                x = np.array([p.x for p in paulis])
                z = np.array([p.z for p in paulis])
                phases = np.array([p.phase for p in paulis], dtype=np.int64)
                apply_gate_to_rows(x, z, phases, gate)
                expected = PackedPauliTable.from_bool_arrays(x, z, phases % 4)
                assert np.array_equal(table.x_words, expected.x_words), name
                assert np.array_equal(table.z_words, expected.z_words), name
                assert np.array_equal(table.phases, expected.phases), name

    def test_two_qubit_gates_match_legacy(self, rng):
        for name in self.GATES_2Q:
            for num_qubits in (2, 65, 70):
                paulis = [random_pauli(rng, num_qubits) for _ in range(6)]
                qubits = rng.choice(num_qubits, size=2, replace=False)
                gate = Gate(name, (int(qubits[0]), int(qubits[1])))
                table = PackedPauliTable.from_paulis(paulis)
                table.apply_gate(gate)
                x = np.array([p.x for p in paulis])
                z = np.array([p.z for p in paulis])
                phases = np.array([p.phase for p in paulis], dtype=np.int64)
                apply_gate_to_rows(x, z, phases, gate)
                expected = PackedPauliTable.from_bool_arrays(x, z, phases % 4)
                assert np.array_equal(table.x_words, expected.x_words), name
                assert np.array_equal(table.z_words, expected.z_words), name
                assert np.array_equal(table.phases, expected.phases), name

    def test_gate_outside_register_rejected(self):
        table = PackedPauliTable.from_paulis([PauliString.from_label("XX")])
        with pytest.raises(PauliError):
            table.apply_gate(Gate("h", (5,)))


class TestPauliStringPackedView:
    """PauliString is a thin view over packed words."""

    @settings(max_examples=60)
    @given(
        st.integers(min_value=1, max_value=130).flatmap(
            lambda n: st.text(alphabet="IXYZ", min_size=n, max_size=n)
        ),
        st.sampled_from([1, -1]),
    )
    def test_label_roundtrip_across_word_boundaries(self, label, sign):
        pauli = PauliString.from_label(label, sign=sign)
        assert PauliString.from_label(pauli.to_label()) == pauli
        # The boolean views agree with the packed words.
        assert np.array_equal(pack_bits(pauli.x), pauli.x_words)
        assert np.array_equal(pack_bits(pauli.z), pauli.z_words)

    def test_letter_negative_index_and_bounds(self):
        pauli = PauliString.from_label("XYZ")
        assert pauli.letter(-1) == "X"  # numpy-style negative indexing
        assert pauli.letter(-3) == "Z"
        with pytest.raises(IndexError):
            pauli.letter(3)
        with pytest.raises(IndexError):
            pauli.letter(-4)

    def test_bool_views_are_read_only(self):
        pauli = PauliString.from_label("XYZ")
        with pytest.raises(ValueError):
            pauli.x[0] = False
        with pytest.raises(ValueError):
            pauli.z[0] = True

    def test_packed_algebra_matches_wide_registers(self, rng):
        # compose / commutes_with run on words; cross-check vs the 2x2-block
        # definitions on registers wider than one word.
        for _ in range(10):
            first = random_pauli(rng, 70)
            second = random_pauli(rng, 70)
            product = first @ second
            # anticommutation parity from per-qubit counts
            overlap = int(np.count_nonzero((first.x & second.z) ^ (first.z & second.x)))
            assert first.commutes_with(second) == (overlap % 2 == 0)
            assert np.array_equal(product.x, first.x ^ second.x)
            assert np.array_equal(product.z, first.z ^ second.z)

    def test_from_words_rejects_wrong_shape(self):
        with pytest.raises(PauliError):
            PauliString.from_words(
                65, np.zeros(1, dtype=np.uint64), np.zeros(1, dtype=np.uint64)
            )


class TestSparsePauliSumPackedView:
    def test_sum_is_backed_by_table(self):
        observable = SparsePauliSum.from_labels(["XX", "YY", "ZZ"], [1.0, -2.0, 0.5])
        table = observable.packed_table
        assert isinstance(table, PackedPauliTable)
        assert len(table) == 3
        assert [table.row(i).to_label() for i in range(3)] == ["XX", "YY", "ZZ"]

    def test_from_packed_lazy_terms(self):
        table = PackedPauliTable.from_paulis(
            [PauliString.from_label("XI"), PauliString.from_label("-ZZ")]
        )
        observable = SparsePauliSum.from_packed(table, [2.0, 3.0])
        # The -ZZ sign folds into the coefficient; the stored row is bare.
        assert observable.coefficients == [2.0, -3.0]
        assert observable.labels() == ["XI", "ZZ"]
        assert [t.coefficient for t in observable.terms] == [2.0, -3.0]

    def test_from_packed_rejects_non_hermitian(self):
        table = PackedPauliTable.from_paulis([PauliString.from_label("+iX")])
        with pytest.raises(PauliError):
            SparsePauliSum.from_packed(table, [1.0])

    def test_simplified_still_merges(self):
        observable = SparsePauliSum.from_labels(["XX", "XX", "ZZ"], [1.0, 2.0, 1e-15])
        simplified = observable.simplified()
        assert simplified.labels() == ["XX"]
        assert simplified.coefficients == [3.0]

    def test_conjugated_by_tableau(self, rng):
        from repro.clifford.tableau import CliffordTableau

        from tests.conftest import random_clifford_circuit, random_pauli_terms

        terms = random_pauli_terms(rng, 5, 12)
        observable = SparsePauliSum(PauliTerm(t.pauli, t.coefficient) for t in terms)
        circuit = random_clifford_circuit(rng, 5, 30)
        tableau = CliffordTableau.from_circuit(circuit)
        conjugated = observable.conjugated_by(tableau)
        for term, original in zip(conjugated.terms, observable.terms):
            image = tableau.conjugate(original.pauli)
            sign = float(np.real(image.sign))
            assert term.pauli == image.bare()
            assert term.coefficient == pytest.approx(sign * original.coefficient)


class TestSuffixApplication:
    """The in-place suffix primitives the table-native extractor runs on."""

    def _random_table(self, rng, num_qubits=70, rows=8):
        return PackedPauliTable.from_paulis(
            random_pauli(rng, num_qubits) for _ in range(rows)
        )

    def test_apply_gates_suffix_leaves_prefix_untouched(self, rng):
        table = self._random_table(rng)
        reference = table.copy()
        gates = [Gate("h", (3,)), Gate("cx", (3, 67)), Gate("sdg", (67,))]
        table.apply_gates(gates, start=5)
        for index in range(5):
            assert table.row(index) == reference.row(index)
        for index in range(5, len(table)):
            expected = reference.row(index)
            for gate in gates:
                from repro.clifford.conjugation import conjugate_pauli_by_gate

                expected = conjugate_pauli_by_gate(expected, gate)
            assert table.row(index) == expected

    def test_apply_basis_layer_matches_gate_stream(self, rng):
        from repro.synthesis.pauli_rotation import basis_change_gates

        for _ in range(10):
            current = random_pauli(rng, 66)
            table = self._random_table(rng, num_qubits=66, rows=6)
            streamed = table.copy()
            streamed.apply_gates(basis_change_gates(current))
            table.apply_basis_layer(
                current.x_words & current.z_words, current.x_words.copy()
            )
            assert np.array_equal(table.x_words, streamed.x_words)
            assert np.array_equal(table.z_words, streamed.z_words)
            assert np.array_equal(table.phases, streamed.phases)

    def test_move_row_matches_insert_pop(self, rng):
        table = self._random_table(rng, num_qubits=12, rows=7)
        rows = table.to_paulis()
        table.move_row(5, 2)
        rows.insert(2, rows.pop(5))
        assert table.to_paulis() == rows

    def test_move_row_rejects_forward_moves(self, rng):
        table = self._random_table(rng, num_qubits=4, rows=3)
        with pytest.raises(PauliError):
            table.move_row(0, 2)

    def test_row_view_shares_words(self, rng):
        table = self._random_table(rng, num_qubits=8, rows=4)
        view = table.row_view(1)
        assert view == table.row(1)
        table.apply_gates([Gate("x", (0,))])  # phases may change
        # the view tracks the table's live words
        assert np.shares_memory(view.x_words, table.x_words)

    def test_weights_range_and_argsort(self):
        table = PackedPauliTable.from_labels(["XXXX", "IIIZ", "XYII", "IIII", "ZIIZ"])
        assert list(table.weights()) == [4, 1, 2, 0, 2]
        assert list(table.weights(start=1, stop=4)) == [1, 2, 0]
        order = table.argsort_weights()
        assert list(order) == [3, 1, 2, 4, 0]  # stable: ties keep row order

    def test_sum_weight_queries(self):
        observable = SparsePauliSum.from_labels(["XXII", "IIIZ", "XYZI"], [1.0, 2.0, 3.0])
        assert list(observable.weights()) == [2, 1, 3]
        assert list(observable.argsort_by_weight()) == [1, 0, 2]
