"""Unit tests for the symplectic PauliString representation."""

import numpy as np
import pytest

from repro.exceptions import PauliError
from repro.paulis.pauli import PauliString

from tests.conftest import random_pauli


class TestLabelRoundTrip:
    def test_simple_labels(self):
        for label in ["I", "X", "Y", "Z", "XX", "XYZ", "IZYX", "ZZZZZ"]:
            pauli = PauliString.from_label(label)
            assert pauli.to_label() == label

    def test_negative_sign(self):
        pauli = PauliString.from_label("-XY")
        assert pauli.to_label() == "-XY"
        assert pauli.sign == -1

    def test_imaginary_prefix(self):
        pauli = PauliString.from_label("+iZ")
        assert pauli.sign == 1j
        assert pauli.to_label() == "+iZ"

    def test_sign_argument(self):
        pauli = PauliString.from_label("XZ", sign=-1)
        assert pauli.sign == -1

    def test_invalid_character(self):
        with pytest.raises(PauliError):
            PauliString.from_label("XQ")

    def test_empty_label(self):
        with pytest.raises(PauliError):
            PauliString.from_label("")

    def test_random_roundtrip(self, rng):
        for _ in range(50):
            pauli = random_pauli(rng, int(rng.integers(1, 8)))
            again = PauliString.from_label(pauli.to_label())
            assert again == pauli

    def test_label_qubit_order(self):
        # Leftmost character is the highest qubit.
        pauli = PauliString.from_label("XYZ")
        assert pauli.letter(0) == "Z"
        assert pauli.letter(1) == "Y"
        assert pauli.letter(2) == "X"


class TestConstructors:
    def test_identity(self):
        pauli = PauliString.identity(4)
        assert pauli.is_identity()
        assert pauli.weight == 0
        assert pauli.to_label() == "IIII"

    def test_from_sparse(self):
        pauli = PauliString.from_sparse(4, [(0, "X"), (2, "Z")])
        assert pauli.to_label() == "IZIX"

    def test_from_sparse_duplicate_qubit(self):
        with pytest.raises(PauliError):
            PauliString.from_sparse(3, [(1, "X"), (1, "Z")])

    def test_from_sparse_out_of_range(self):
        with pytest.raises(PauliError):
            PauliString.from_sparse(3, [(5, "X")])

    def test_single(self):
        pauli = PauliString.single(3, 1, "Y")
        assert pauli.to_label() == "IYI"


class TestProperties:
    def test_weight_and_support(self):
        pauli = PauliString.from_label("XIZY")
        assert pauli.weight == 3
        assert pauli.support == [0, 1, 3]

    def test_is_hermitian(self):
        assert PauliString.from_label("XYZ").is_hermitian()
        assert PauliString.from_label("-XYZ").is_hermitian()
        assert not PauliString.from_label("+iX").is_hermitian()

    def test_bare_strips_sign(self):
        pauli = PauliString.from_label("-YZ")
        assert pauli.bare().to_label() == "YZ"

    def test_letters(self):
        assert PauliString.from_label("XZ").letters() == ["Z", "X"]


class TestAlgebra:
    def test_compose_matches_matrices(self, rng):
        for _ in range(40):
            num_qubits = int(rng.integers(1, 5))
            first = random_pauli(rng, num_qubits)
            second = random_pauli(rng, num_qubits)
            product = first @ second
            expected = first.to_matrix() @ second.to_matrix()
            assert np.allclose(product.to_matrix(), expected)

    def test_commutes_with_matches_matrices(self, rng):
        for _ in range(40):
            num_qubits = int(rng.integers(1, 5))
            first = random_pauli(rng, num_qubits)
            second = random_pauli(rng, num_qubits)
            commutator = (
                first.to_matrix() @ second.to_matrix()
                - second.to_matrix() @ first.to_matrix()
            )
            assert first.commutes_with(second) == np.allclose(commutator, 0)

    def test_adjoint_matches_matrices(self, rng):
        for _ in range(20):
            pauli = random_pauli(rng, int(rng.integers(1, 5)))
            assert np.allclose(pauli.adjoint().to_matrix(), pauli.to_matrix().conj().T)

    def test_negate(self):
        pauli = PauliString.from_label("XZ")
        assert pauli.negate().sign == -1

    def test_compose_incompatible_sizes(self):
        with pytest.raises(PauliError):
            PauliString.from_label("X") @ PauliString.from_label("XX")

    def test_restricted_and_expanded(self):
        pauli = PauliString.from_label("XIZY")
        restricted = pauli.restricted([0, 3])
        assert restricted.to_label() == "XY"
        expanded = restricted.expanded(4, [0, 3])
        assert expanded.to_label(include_sign=False) == "XIIY"

    def test_equals_up_to_phase(self):
        assert PauliString.from_label("XZ").equals_up_to_phase(PauliString.from_label("-XZ"))
        assert not PauliString.from_label("XZ").equals_up_to_phase(PauliString.from_label("ZX"))

    def test_hash_consistency(self):
        first = PauliString.from_label("XYZ")
        second = PauliString.from_label("XYZ")
        assert hash(first) == hash(second)
        assert len({first, second}) == 1


class TestMatrix:
    def test_single_qubit_matrices(self):
        assert np.allclose(
            PauliString.from_label("Y").to_matrix(), np.array([[0, -1j], [1j, 0]])
        )

    def test_tensor_order(self):
        # "XZ" means X on qubit 1, Z on qubit 0, so matrix = X (x) Z in kron order.
        expected = np.kron(np.array([[0, 1], [1, 0]]), np.array([[1, 0], [0, -1]]))
        assert np.allclose(PauliString.from_label("XZ").to_matrix(), expected)
