"""SparsePauliSum dictionary interchange (symmer-style ``{label: coeff}``)."""

import numpy as np
import pytest

from repro.exceptions import PauliError
from repro.paulis.sum import SparsePauliSum

from tests.conftest import random_pauli_terms


class TestFromDictionary:
    def test_basic_construction(self):
        observable = SparsePauliSum.from_dictionary({"XZ": 0.5, "YY": -0.25})
        assert observable.num_qubits == 2
        assert observable.labels() == ["XZ", "YY"]
        assert observable.coefficients == [0.5, -0.25]

    def test_signed_labels_fold_into_coefficients(self):
        observable = SparsePauliSum.from_dictionary({"-XZ": 0.5, "+YY": 0.25})
        assert observable.to_dictionary() == {"XZ": -0.5, "YY": 0.25}

    def test_real_valued_complex_coefficients_accepted(self):
        # symmer serializes coefficients as complex even when they are real
        observable = SparsePauliSum.from_dictionary({"XX": (0.5 + 0j), "ZZ": 1.5})
        assert observable.coefficients == [0.5, 1.5]

    def test_imaginary_coefficient_rejected(self):
        with pytest.raises(PauliError, match="non-real"):
            SparsePauliSum.from_dictionary({"XX": 0.5 + 0.1j})

    def test_empty_dictionary_rejected(self):
        with pytest.raises(PauliError, match="at least one term"):
            SparsePauliSum.from_dictionary({})

    def test_non_dict_rejected(self):
        with pytest.raises(PauliError, match="needs a dict"):
            SparsePauliSum.from_dictionary([("XX", 0.5)])

    def test_non_string_label_rejected(self):
        with pytest.raises(PauliError, match="labels must be strings"):
            SparsePauliSum.from_dictionary({3: 0.5})

    def test_invalid_label_rejected(self):
        with pytest.raises(PauliError):
            SparsePauliSum.from_dictionary({"XQ": 0.5})

    def test_inconsistent_qubit_counts_rejected(self):
        with pytest.raises(PauliError, match="qubit counts"):
            SparsePauliSum.from_dictionary({"XX": 0.5, "ZZZ": 0.25})


class TestToDictionary:
    def test_round_trip_exact(self, rng):
        terms = random_pauli_terms(rng, 6, 12)
        observable = SparsePauliSum(terms)
        dictionary = observable.to_dictionary()
        rebuilt = SparsePauliSum.from_dictionary(dictionary)
        assert rebuilt.to_dictionary() == dictionary
        assert np.allclose(rebuilt.to_matrix(), observable.to_matrix())

    def test_order_preserved(self):
        labels = ["ZZ", "XX", "YY", "IX"]
        observable = SparsePauliSum.from_labels(labels, [1.0, 2.0, 3.0, 4.0])
        assert list(observable.to_dictionary()) == labels

    def test_duplicates_combine_on_the_way_out(self):
        observable = SparsePauliSum.from_labels(["XX", "XX", "ZZ"], [0.5, 0.25, 1.0])
        assert observable.to_dictionary() == {"XX": 0.75, "ZZ": 1.0}

    def test_signs_live_in_coefficients(self):
        observable = SparsePauliSum.from_dictionary({"-YY": 1.0})
        dictionary = observable.to_dictionary()
        assert list(dictionary) == ["YY"]
        assert dictionary["YY"] == -1.0

    def test_matches_matrix_semantics(self):
        observable = SparsePauliSum.from_dictionary({"XI": 0.5, "IZ": -0.25})
        from repro.paulis.pauli import PauliString

        expected = 0.5 * PauliString.from_label("XI").to_matrix()
        expected = expected - 0.25 * PauliString.from_label("IZ").to_matrix()
        assert np.allclose(observable.to_matrix(), expected)
