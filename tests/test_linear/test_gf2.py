"""GF(2) linear algebra and CNOT-network synthesis tests."""

import numpy as np
import pytest

from repro.circuits.circuit import QuantumCircuit
from repro.exceptions import SynthesisError
from repro.linear.cnot_synthesis import (
    cnot_network_matrix,
    synthesize_cnot_network,
    synthesize_cnot_network_pmh,
)
from repro.linear.gf2 import (
    gf2_gauss_elim,
    gf2_inverse,
    gf2_is_invertible,
    gf2_matvec,
    gf2_rank,
    gf2_solve,
)


def random_invertible_matrix(rng: np.random.Generator, size: int) -> np.ndarray:
    while True:
        candidate = rng.integers(0, 2, size=(size, size)).astype(bool)
        if gf2_is_invertible(candidate):
            return candidate


def random_cnot_circuit(rng: np.random.Generator, size: int, gates: int) -> QuantumCircuit:
    circuit = QuantumCircuit(size)
    for _ in range(gates):
        control, target = rng.choice(size, size=2, replace=False)
        circuit.cx(int(control), int(target))
    return circuit


class TestGf2:
    def test_rank_identity(self):
        assert gf2_rank(np.eye(4, dtype=bool)) == 4

    def test_rank_singular(self):
        matrix = np.array([[1, 1], [1, 1]], dtype=bool)
        assert gf2_rank(matrix) == 1

    def test_gauss_elim_pivots(self):
        matrix = np.array([[0, 1], [1, 0]], dtype=bool)
        _, pivots = gf2_gauss_elim(matrix)
        assert pivots == [0, 1]

    def test_is_invertible(self):
        assert gf2_is_invertible(np.eye(3, dtype=bool))
        assert not gf2_is_invertible(np.zeros((3, 3), dtype=bool))
        assert not gf2_is_invertible(np.ones((2, 3), dtype=bool))

    def test_inverse_roundtrip(self, rng):
        for size in [1, 2, 4, 6]:
            matrix = random_invertible_matrix(rng, size)
            inverse = gf2_inverse(matrix)
            product = (matrix.astype(int) @ inverse.astype(int)) % 2
            assert np.array_equal(product, np.eye(size, dtype=int))

    def test_inverse_of_singular_raises(self):
        with pytest.raises(SynthesisError):
            gf2_inverse(np.zeros((2, 2), dtype=bool))

    def test_solve(self, rng):
        for _ in range(10):
            matrix = random_invertible_matrix(rng, 5)
            solution = rng.integers(0, 2, size=5).astype(bool)
            rhs = gf2_matvec(matrix, solution)
            recovered = gf2_solve(matrix, rhs)
            assert np.array_equal(gf2_matvec(matrix, recovered), rhs)

    def test_solve_inconsistent(self):
        matrix = np.array([[1, 0], [1, 0]], dtype=bool)
        rhs = np.array([1, 0], dtype=bool)
        with pytest.raises(SynthesisError):
            gf2_solve(matrix, rhs)

    def test_matvec(self):
        matrix = np.array([[1, 1], [0, 1]], dtype=bool)
        vector = np.array([1, 1], dtype=bool)
        assert np.array_equal(gf2_matvec(matrix, vector), np.array([False, True]))


class TestCnotSynthesis:
    def test_network_matrix_of_single_cx(self):
        circuit = QuantumCircuit(2)
        circuit.cx(0, 1)
        matrix = cnot_network_matrix(circuit)
        expected = np.array([[1, 0], [1, 1]], dtype=bool)
        assert np.array_equal(matrix, expected)

    def test_network_matrix_of_swap(self):
        circuit = QuantumCircuit(2)
        circuit.swap(0, 1)
        matrix = cnot_network_matrix(circuit)
        assert np.array_equal(matrix, np.array([[0, 1], [1, 0]], dtype=bool))

    def test_network_matrix_rejects_hadamard(self):
        circuit = QuantumCircuit(1)
        circuit.h(0)
        with pytest.raises(SynthesisError):
            cnot_network_matrix(circuit)

    def test_network_matrix_ignores_diagonal_gates(self):
        circuit = QuantumCircuit(2)
        circuit.cx(0, 1).rz(0.3, 1).cz(0, 1)
        matrix = cnot_network_matrix(circuit)
        assert np.array_equal(matrix, np.array([[1, 0], [1, 1]], dtype=bool))

    def test_gaussian_synthesis_roundtrip(self, rng):
        for size in [2, 3, 5, 8]:
            matrix = random_invertible_matrix(rng, size)
            circuit = synthesize_cnot_network(matrix)
            assert np.array_equal(cnot_network_matrix(circuit), matrix)

    def test_pmh_synthesis_roundtrip(self, rng):
        for size in [2, 4, 6, 10]:
            matrix = random_invertible_matrix(rng, size)
            circuit = synthesize_cnot_network_pmh(matrix)
            assert np.array_equal(cnot_network_matrix(circuit), matrix)

    def test_synthesis_of_circuit_roundtrip(self, rng):
        for _ in range(10):
            original = random_cnot_circuit(rng, 5, 15)
            matrix = cnot_network_matrix(original)
            resynthesized = synthesize_cnot_network(matrix)
            assert np.array_equal(cnot_network_matrix(resynthesized), matrix)

    def test_singular_matrix_rejected(self):
        with pytest.raises(SynthesisError):
            synthesize_cnot_network(np.zeros((3, 3), dtype=bool))

    def test_identity_needs_no_gates(self):
        circuit = synthesize_cnot_network(np.eye(4, dtype=bool))
        assert len(circuit) == 0

    def test_pmh_not_worse_than_quadratic(self, rng):
        matrix = random_invertible_matrix(rng, 16)
        circuit = synthesize_cnot_network_pmh(matrix)
        assert circuit.cx_count() <= 16 * 16
