"""Cache lifecycle: TTL sweeps, template-store eviction, server sweep task."""

import os
import time

import numpy as np
import pytest

import repro
from repro.exceptions import CacheError
from repro.parametric import ParametricProgram, compile_template
from repro.service.cache import ArtifactCache, cache_key, template_cache_key
from repro.service.client import Client
from repro.service.server import ServiceServer, run_server_in_thread

from tests.conftest import random_pauli_terms


def _rng(seed=0):
    return np.random.default_rng(seed)


def _backdate(path, seconds):
    stamp = time.time() - seconds
    os.utime(path, (stamp, stamp))


def _store_one(cache, seed=1):
    terms = random_pauli_terms(_rng(seed), 4, 6)
    key = cache_key(terms)
    cache.put(key, repro.compile(terms))
    return key


def _store_template(cache, seed=2, num_terms=6):
    terms = random_pauli_terms(_rng(seed), 4, num_terms)
    program = ParametricProgram.from_terms(terms, [i % 2 for i in range(num_terms)])
    key = template_cache_key(program)
    cache.put_template(key, compile_template(program))
    return key


class TestTtlSweep:
    def test_invalid_ttl_rejected(self, tmp_path):
        with pytest.raises(CacheError):
            ArtifactCache(tmp_path, ttl_seconds=0)
        with pytest.raises(CacheError):
            ArtifactCache(tmp_path, ttl_seconds=-5)

    def test_sweep_without_ttl_only_reconciles(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        key = _store_one(cache)
        _backdate(cache._object_path(key), 1e6)
        summary = cache.sweep()
        assert summary == {
            "expired_objects": 0,
            "expired_templates": 0,
            "index_drift": 0,
            "ttl_seconds": None,
        }
        assert cache.get(key) is not None

    def test_sweep_expires_idle_artifacts(self, tmp_path):
        cache = ArtifactCache(tmp_path, ttl_seconds=60.0)
        stale = _store_one(cache, seed=3)
        fresh = _store_one(cache, seed=4)
        _backdate(cache._object_path(stale), 3600)
        cache.forget_memory()
        summary = cache.sweep()
        assert summary["expired_objects"] == 1
        assert cache.get(stale) is None
        assert cache.get(fresh) is not None

    def test_sweep_expires_idle_templates(self, tmp_path):
        cache = ArtifactCache(tmp_path, ttl_seconds=60.0)
        key = _store_template(cache)
        _backdate(cache._template_path(key), 3600)
        cache.forget_memory()
        assert cache.sweep()["expired_templates"] == 1
        assert cache.get_template(key) is None

    def test_disk_hits_refresh_the_clock(self, tmp_path):
        # a get() touches the mtime, so an *active* artifact never expires
        cache = ArtifactCache(tmp_path, ttl_seconds=60.0)
        key = _store_one(cache, seed=5)
        _backdate(cache._object_path(key), 3600)
        cache.forget_memory()
        assert cache.get(key) is not None  # disk hit touches mtime
        assert cache.sweep()["expired_objects"] == 0
        assert cache.get(key) is not None

    def test_template_disk_hits_refresh_the_clock(self, tmp_path):
        cache = ArtifactCache(tmp_path, ttl_seconds=60.0)
        key = _store_template(cache, seed=6)
        _backdate(cache._template_path(key), 3600)
        cache.forget_memory()
        assert cache.get_template(key) is not None
        assert cache.sweep()["expired_templates"] == 0

    def test_counters_accumulate(self, tmp_path):
        cache = ArtifactCache(tmp_path, ttl_seconds=60.0)
        stale = _store_one(cache, seed=7)
        _backdate(cache._object_path(stale), 3600)
        cache.forget_memory()
        cache.sweep()
        cache.sweep()
        stats = cache.stats()
        assert stats["sweeps"] == 2
        assert stats["expired"] == 1
        assert stats["ttl_seconds"] == 60.0


class TestTemplateEviction:
    def test_template_store_respects_budget(self, tmp_path):
        cache = ArtifactCache(tmp_path, max_template_bytes=1)
        first = _store_template(cache, seed=8)
        second = _store_template(cache, seed=9, num_terms=8)
        names = {path.stem for _, _, path in cache._scan_templates()}
        assert len(names) <= 1
        assert cache.template_evictions >= 1
        assert {first, second} - names  # at least one was evicted

    def test_oldest_template_evicted_first(self, tmp_path):
        cache = ArtifactCache(tmp_path, max_template_bytes=10_000_000)
        old = _store_template(cache, seed=10)
        _backdate(cache._template_path(old), 3600)
        new = _store_template(cache, seed=11, num_terms=8)
        size = sum(s for _, s, _ in cache._scan_templates())
        cache.max_template_bytes = size - 1  # force one eviction
        cache._evict_templates_over_budget()
        names = {path.stem for _, _, path in cache._scan_templates()}
        assert new in names
        assert old not in names
        cache.forget_memory()
        assert cache.get_template(old) is None

    def test_stats_surface_template_budget(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        _store_template(cache, seed=12)
        stats = cache.stats()
        assert stats["template_disk_entries"] == 1
        assert stats["template_disk_bytes"] > 0
        assert stats["max_template_bytes"] == cache.max_template_bytes
        assert stats["template_evictions"] == 0


class TestServerSweepTask:
    def test_background_sweep_runs_and_surfaces_on_metrics(self, tmp_path):
        cache = ArtifactCache(tmp_path, ttl_seconds=3600.0)
        server = ServiceServer(cache=cache, sweep_interval=0.05, window_seconds=0.001)
        with run_server_in_thread(server):
            with Client(port=server.port) as client:
                deadline = time.time() + 10
                while time.time() < deadline:
                    metrics = client.metrics()
                    if metrics["cache"]["sweeps"] >= 2:
                        break
                    time.sleep(0.05)
                assert metrics["cache"]["sweeps"] >= 2
                assert metrics["telemetry"]["counters"]["service.cache_sweeps"] >= 2
                assert metrics["cache"]["ttl_seconds"] == 3600.0

    def test_sweep_disabled_by_default(self, tmp_path):
        server = ServiceServer(cache_dir=tmp_path)
        assert server.sweep_interval == 0.0
        assert server._sweep_task is None

    def test_server_wires_ttl_into_cache(self, tmp_path):
        server = ServiceServer(cache_dir=tmp_path, ttl_seconds=120.0)
        assert server.cache.ttl_seconds == 120.0
