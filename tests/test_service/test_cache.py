"""The content-addressed artifact cache: keys, layering, persistence, LRU."""

import json
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

import repro
from repro.exceptions import CacheError, InvalidProgramError
from repro.paulis.sum import SparsePauliSum
from repro.service.cache import ArtifactCache, cache_key, target_fingerprint
from repro.workloads.registry import get_benchmark

from tests.conftest import random_pauli_terms

REPO_SRC = Path(__file__).resolve().parents[2] / "src"


@pytest.fixture
def cache(tmp_path):
    return ArtifactCache(tmp_path / "cache")


class TestCacheKey:
    def test_same_program_same_key(self, rng):
        terms = random_pauli_terms(rng, 5, 8)
        assert cache_key(terms) == cache_key(list(terms))

    def test_sum_and_term_list_share_a_key(self, rng):
        terms = random_pauli_terms(rng, 5, 8)
        assert cache_key(terms) == cache_key(SparsePauliSum(terms))

    def test_key_depends_on_coefficients(self, rng):
        terms = random_pauli_terms(rng, 5, 8)
        rescaled = [t.with_coefficient(t.coefficient * 2.0) for t in terms]
        assert cache_key(terms) != cache_key(rescaled)

    def test_key_depends_on_level_pipeline_target(self, rng):
        terms = random_pauli_terms(rng, 5, 8)
        keys = {
            cache_key(terms, level=3),
            cache_key(terms, level=2),
            cache_key(terms, pipeline="quclear"),
            cache_key(terms, target="sycamore"),
        }
        assert len(keys) == 4

    def test_equivalent_targets_fingerprint_identically(self):
        from repro.compiler.target import Target

        assert target_fingerprint(Target.sycamore()) == target_fingerprint("sycamore")
        assert target_fingerprint(None) == "target:none"

    def test_pipeline_objects_rejected(self, rng):
        from repro.compiler.presets import preset_pipeline

        with pytest.raises(CacheError):
            cache_key(random_pauli_terms(rng, 4, 4), pipeline=preset_pipeline(3))

    def test_empty_program_rejected(self):
        with pytest.raises(InvalidProgramError):
            cache_key([])


class TestCacheStore:
    def test_miss_then_hit(self, cache, rng):
        terms = random_pauli_terms(rng, 4, 6)
        key = cache.key_for(terms, level=3)
        assert cache.get(key) is None
        result = repro.compile(terms, level=3)
        cache.put(key, result)
        hit = cache.get(key)
        assert hit is not None
        assert hit.circuit == result.circuit
        stats = cache.stats()
        assert stats["hits"] == 1 and stats["misses"] == 1

    def test_disk_hit_after_memory_drop(self, cache, rng):
        terms = random_pauli_terms(rng, 4, 6)
        key = cache.key_for(terms)
        result = repro.compile(terms, level=3)
        cache.put(key, result)
        cache.forget_memory()
        hit = cache.get(key)
        assert hit.circuit == result.circuit
        assert hit.extracted_clifford == result.extracted_clifford
        assert cache.stats()["disk_hits"] == 1

    def test_persists_across_cache_instances(self, tmp_path, rng):
        terms = random_pauli_terms(rng, 4, 6)
        first = ArtifactCache(tmp_path / "shared")
        key = first.key_for(terms)
        first.put(key, repro.compile(terms, level=3))
        second = ArtifactCache(tmp_path / "shared")
        hit = second.get(key)
        assert hit is not None and hit.circuit.num_qubits == 4

    def test_index_file_snapshot(self, cache, rng):
        terms = random_pauli_terms(rng, 4, 6)
        key = cache.key_for(terms)
        cache.put(key, repro.compile(terms, level=3))
        index = json.loads(cache.index_path.read_text())
        assert index["schema"] == "repro-artifact-index/v1"
        assert key in index["artifacts"]
        assert index["total_bytes"] > 0

    def test_corrupt_artifact_degrades_to_miss(self, cache, rng):
        terms = random_pauli_terms(rng, 4, 6)
        key = cache.key_for(terms)
        cache.put(key, repro.compile(terms, level=3))
        cache.forget_memory()
        (cache.objects_dir / f"{key}.json").write_text("{not json")
        assert cache.get(key) is None
        # the poisoned file is dropped so the next put can heal it
        assert not (cache.objects_dir / f"{key}.json").exists()

    def test_structurally_incomplete_artifact_degrades_to_miss(self, cache, rng):
        # valid JSON with the right format tag but a missing required field
        # must read as a miss (and be dropped), not raise out of get()
        terms = random_pauli_terms(rng, 4, 6)
        key = cache.key_for(terms)
        cache.put(key, repro.compile(terms, level=3))
        cache.forget_memory()
        path = cache.objects_dir / f"{key}.json"
        artifact = json.loads(path.read_text())
        del artifact["extraction"]["optimized_circuit"]
        path.write_text(json.dumps(artifact))
        assert cache.get(key) is None
        assert not path.exists()

    def test_malformed_key_rejected(self, cache):
        with pytest.raises(CacheError):
            cache.get("../../etc/passwd")

    def test_lru_eviction_respects_size_cap(self, tmp_path, rng):
        small = ArtifactCache(tmp_path / "small", max_bytes=1)
        programs = [random_pauli_terms(rng, 4, 5) for _ in range(3)]
        keys = []
        for program in programs:
            key = small.key_for(program)
            small.put(key, repro.compile(program, level=1))
            keys.append(key)
        # a 1-byte budget keeps at most the newest artifact on disk
        assert len(small) <= 1
        assert small.stats()["evictions"] >= 2

    def test_recently_used_survives_eviction(self, tmp_path, rng):
        programs = [random_pauli_terms(rng, 4, 5) for _ in range(3)]
        results = [repro.compile(p, level=1) for p in programs]
        probe = ArtifactCache(tmp_path / "lru")
        keys = [probe.key_for(p) for p in programs]
        probe.put(keys[0], results[0])
        one_size = probe.stats()["disk_bytes"]
        # room for two artifacts: storing a third must evict the stalest
        lru = ArtifactCache(tmp_path / "lru2", max_bytes=int(one_size * 2.5))
        lru.put(keys[0], results[0])
        time.sleep(0.02)
        lru.put(keys[1], results[1])
        time.sleep(0.02)
        lru.forget_memory()
        assert lru.get(keys[0]) is not None  # refreshes key 0's mtime
        time.sleep(0.02)
        lru.put(keys[2], results[2])
        lru.forget_memory()
        assert lru.get(keys[0]) is not None
        assert lru.get(keys[1]) is None  # the stalest was evicted

    def test_concurrent_puts_are_safe(self, cache, rng):
        programs = [random_pauli_terms(rng, 4, 5) for _ in range(8)]
        results = [repro.compile(p, level=1) for p in programs]
        keys = [cache.key_for(p, level=1) for p in programs]

        def store(index):
            cache.put(keys[index], results[index])

        threads = [threading.Thread(target=store, args=(i,)) for i in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        cache.forget_memory()
        for index, key in enumerate(keys):
            assert cache.get(key).circuit == results[index].circuit


class TestAcceptance:
    """The PR's cache acceptance criteria, asserted directly."""

    def test_h2o_warm_hit_at_least_20x_faster_than_cold(self, tmp_path):
        terms = get_benchmark("H2O").terms()
        cache = ArtifactCache(tmp_path / "h2o")
        key = cache.key_for(terms, level=3)

        cold = min(_timed(lambda: repro.compile(terms, level=3)) for _ in range(3))
        cache.put(key, repro.compile(terms, level=3))
        warm = min(_timed(lambda: cache.get(key)) for _ in range(5))
        hit = cache.get(key)
        assert hit.circuit == repro.compile(terms, level=3).circuit
        assert cold / warm >= 20.0, f"warm hit only {cold / warm:.1f}x faster"

    def test_cache_survives_process_restart(self, tmp_path):
        terms = get_benchmark("H2O").terms()
        cache = ArtifactCache(tmp_path / "restart")
        key = cache.key_for(terms, level=3)
        result = repro.compile(terms, level=3)
        cache.put(key, result)
        # a fresh interpreter against the same cache dir must hit, and the
        # artifact must deserialize to the identical circuit
        script = (
            "import sys, json\n"
            "from repro.service.cache import ArtifactCache\n"
            "from repro.workloads.registry import get_benchmark\n"
            "import repro\n"
            f"cache = ArtifactCache({str(tmp_path / 'restart')!r})\n"
            "terms = get_benchmark('H2O').terms()\n"
            "key = cache.key_for(terms, level=3)\n"
            f"assert key == {key!r}, 'key not reproducible across processes'\n"
            "hit = cache.get(key)\n"
            "assert hit is not None, 'no hit after restart'\n"
            "assert hit.circuit == repro.compile(terms, level=3).circuit\n"
            "print('RESTART-HIT-OK')\n"
        )
        completed = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True,
            text=True,
            env={"PYTHONPATH": str(REPO_SRC), "PATH": "/usr/bin:/bin"},
        )
        assert completed.returncode == 0, completed.stderr
        assert "RESTART-HIT-OK" in completed.stdout


def _timed(fn) -> float:
    start = time.perf_counter()
    fn()
    return time.perf_counter() - start


# ---------------------------------------------------------------------- #
# Compiled templates (repro.parametric)
# ---------------------------------------------------------------------- #
def _parametric_program(rng, num_qubits=4, num_terms=8, num_params=2):
    from repro.parametric import ParametricProgram

    terms = random_pauli_terms(rng, num_qubits, num_terms)
    return ParametricProgram.from_terms(
        terms, [index % num_params for index in range(num_terms)]
    )


class TestTemplateKey:
    def test_structure_only_and_reproducible(self, rng):
        from repro.parametric import ParametricProgram
        from repro.service.cache import template_cache_key

        seed_terms = random_pauli_terms(rng, 4, 8)

        slots = [i % 2 for i in range(8)]
        first = ParametricProgram.from_terms(seed_terms, slots)
        rebuilt = ParametricProgram.from_terms(list(seed_terms), slots)
        assert template_cache_key(first) == template_cache_key(rebuilt)
        # no concrete angle enters the key: it is usable before any binding
        assert len(template_cache_key(first)) == 64

    def test_key_depends_on_structure_fields(self, rng):
        from repro.parametric import ParametricProgram
        from repro.service.cache import template_cache_key

        terms = random_pauli_terms(rng, 4, 8)
        base = ParametricProgram.from_terms(terms, [i % 2 for i in range(8)])
        other_slots = ParametricProgram.from_terms(terms, [0] * 8)
        rescaled = ParametricProgram.from_terms(
            [t.with_coefficient(t.coefficient * 2.0) for t in terms],
            [i % 2 for i in range(8)],
        )
        keys = {
            template_cache_key(base),
            template_cache_key(other_slots),
            template_cache_key(rescaled),
            template_cache_key(base, level=2),
        }
        assert len(keys) == 4

    def test_concrete_program_rejected(self, rng):
        from repro.service.cache import template_cache_key

        with pytest.raises(CacheError, match="ParametricProgram"):
            template_cache_key(random_pauli_terms(rng, 4, 4))


class TestTemplateStore:
    def test_put_get_and_memory_promotion(self, cache, rng):
        from repro.parametric import compile_template

        program = _parametric_program(rng)
        template = compile_template(program, level=3)
        key = cache.template_key_for(program, level=3)
        assert cache.get_template(key) is None
        cache.put_template(key, template)
        assert cache.get_template(key) is template  # memory layer, same object
        cache.forget_memory()
        restored = cache.get_template(key)
        assert restored is not None and restored is not template
        assert restored.skeleton_gate_count == template.skeleton_gate_count
        # the disk hit promoted it: next get is the same object again
        assert cache.get_template(key) is restored
        stats = cache.stats()
        assert stats["template_hits"] >= 2
        assert stats["template_misses"] == 1
        assert stats["template_disk_entries"] == 1

    def test_restored_template_binds_identically(self, tmp_path, rng):
        import numpy as np

        from repro.parametric import compile_template

        program = _parametric_program(rng)
        template = compile_template(program, level=3)
        first = ArtifactCache(tmp_path / "tpl")
        key = first.template_key_for(program, level=3)
        first.put_template(key, template)
        # a fresh cache instance on the same dir: restart persistence
        second = ArtifactCache(tmp_path / "tpl")
        restored = second.get_template(key)
        params = np.array([0.42, -1.17])
        assert restored.bind(params).circuit == template.bind(params).circuit

    def test_corrupt_template_degrades_to_miss(self, cache, rng):
        from repro.parametric import compile_template

        program = _parametric_program(rng)
        key = cache.template_key_for(program)
        cache.put_template(key, compile_template(program, level=3))
        cache.forget_memory()
        (cache.templates_dir / f"{key}.json").write_text("{not json")
        assert cache.get_template(key) is None

    def test_malformed_template_key_rejected(self, cache):
        with pytest.raises(CacheError):
            cache.get_template("../escape")

    def test_templates_exempt_from_lru_eviction(self, tmp_path, rng):
        from repro.parametric import compile_template

        small = ArtifactCache(tmp_path / "small", max_bytes=1)
        program = _parametric_program(rng)
        template_key = small.template_key_for(program)
        small.put_template(template_key, compile_template(program, level=3))
        # artifact puts under a 1-byte budget trigger evictions...
        for _ in range(3):
            terms = random_pauli_terms(rng, 4, 5)
            small.put(small.key_for(terms, level=1), repro.compile(terms, level=1))
        assert small.stats()["evictions"] >= 2
        small.forget_memory()
        # ...but the template store is lifecycle-managed separately
        assert small.get_template(template_key) is not None


class TestDelete:
    def test_delete_removes_all_layers(self, cache, rng):
        terms = random_pauli_terms(rng, 4, 6)
        key = cache.key_for(terms, level=3)
        cache.put(key, repro.compile(terms, level=3))
        assert cache.delete(key) is True
        assert cache.get(key) is None
        cache.forget_memory()
        assert cache.get(key) is None
        assert cache.stats()["deletes"] == 1

    def test_delete_absent_returns_false(self, cache, rng):
        key = cache.key_for(random_pauli_terms(rng, 4, 6))
        assert cache.delete(key) is False
        assert cache.stats()["deletes"] == 0

    def test_delete_updates_index_snapshot(self, cache, rng):
        terms = random_pauli_terms(rng, 4, 6)
        key = cache.key_for(terms, level=3)
        cache.put(key, repro.compile(terms, level=3))
        cache.delete(key)
        index = json.loads(cache.index_path.read_text())
        assert key not in index["artifacts"]


class TestIndexDrift:
    def test_clean_cache_reports_zero_drift(self, cache, rng):
        terms = random_pauli_terms(rng, 4, 6)
        cache.put(cache.key_for(terms), repro.compile(terms, level=3))
        assert cache.reconcile_index() == 0
        assert cache.stats()["index_drift"] == 0

    def test_externally_deleted_artifact_is_detected_and_repaired(self, cache, rng):
        terms = random_pauli_terms(rng, 4, 6)
        key = cache.key_for(terms)
        cache.put(key, repro.compile(terms, level=3))
        # simulate an operator / volume prune that bypasses cache.delete()
        cache._object_path(key).unlink()
        assert cache.reconcile_index() == 1
        stats = cache.stats()
        assert stats["index_drift"] == 1
        # the index snapshot was rewritten without the dead entry
        index = json.loads(cache.index_path.read_text())
        assert key not in index["artifacts"]
        # and detection is one-shot: the repaired index shows no new drift
        assert cache.reconcile_index() == 0
        assert cache.stats()["index_drift"] == 1

    def test_drifted_entry_is_dropped_from_memory_layer(self, cache, rng):
        terms = random_pauli_terms(rng, 4, 6)
        key = cache.key_for(terms)
        cache.put(key, repro.compile(terms, level=3))
        cache._object_path(key).unlink()
        cache.reconcile_index()
        # the memory layer must not keep serving an artifact whose backing
        # file is gone (a later restart would silently flip it to a miss)
        assert cache.get(key) is None

    def test_drift_detected_at_construction(self, tmp_path, rng):
        terms = random_pauli_terms(rng, 4, 6)
        first = ArtifactCache(tmp_path / "shared")
        key = first.key_for(terms)
        first.put(key, repro.compile(terms, level=3))
        first._object_path(key).unlink()
        second = ArtifactCache(tmp_path / "shared")
        assert second.index_drift == 1
        assert json.loads(second.index_path.read_text())["artifacts"] == {}

    def test_internal_delete_is_not_drift(self, cache, rng):
        terms = random_pauli_terms(rng, 4, 6)
        key = cache.key_for(terms)
        cache.put(key, repro.compile(terms, level=3))
        cache.delete(key)
        assert cache.reconcile_index() == 0
        assert cache.stats()["index_drift"] == 0

    def test_stats_triggers_reconcile(self, cache, rng):
        terms = random_pauli_terms(rng, 4, 6)
        key = cache.key_for(terms)
        cache.put(key, repro.compile(terms, level=3))
        cache._object_path(key).unlink()
        assert cache.stats()["index_drift"] == 1
