"""The multi-worker fleet: hash ring, sharding front, restarts, rollups."""

import collections
import http.client
import json

import numpy as np
import pytest

import repro
from repro.exceptions import ServiceError
from repro.service.client import Client
from repro.service.fleet import DEFAULT_VNODES, FleetFront, HashRing
from repro.service.server import run_server_in_thread

from tests.conftest import random_pauli_terms


def _rng(seed=0):
    return np.random.default_rng(seed)


class TestHashRing:
    def test_lookup_is_deterministic(self):
        ring = HashRing(["w0", "w1", "w2"])
        again = HashRing(["w0", "w1", "w2"])
        keys = [f"artifact-{i}" for i in range(200)]
        assert [ring.lookup(k) for k in keys] == [again.lookup(k) for k in keys]

    def test_slots_split_the_key_space_roughly_evenly(self):
        ring = HashRing(["w0", "w1", "w2", "w3"])
        counts = collections.Counter(ring.lookup(f"key-{i}") for i in range(4000))
        assert set(counts) == {"w0", "w1", "w2", "w3"}
        assert min(counts.values()) > 4000 / 4 * 0.5

    def test_single_slot_owns_everything(self):
        ring = HashRing(["only"])
        assert {ring.lookup(f"k{i}") for i in range(50)} == {"only"}

    def test_points_keyed_by_slot_name_not_order(self):
        # a restarted worker re-enters under its slot name and must inherit
        # exactly its old ranges, whatever order the slots were listed in
        forward = HashRing(["w0", "w1"])
        reversed_ = HashRing(["w1", "w0"])
        keys = [f"key-{i}" for i in range(300)]
        assert [forward.lookup(k) for k in keys] == [reversed_.lookup(k) for k in keys]

    def test_empty_ring_rejected(self):
        with pytest.raises(ServiceError):
            HashRing([])

    def test_vnode_count(self):
        ring = HashRing(["a", "b"], vnodes=8)
        assert len(ring._points) == 16
        assert HashRing(["a"]).vnodes == DEFAULT_VNODES


@pytest.fixture(scope="module")
def fleet(tmp_path_factory):
    front = FleetFront(
        workers=2,
        cache_dir=str(tmp_path_factory.mktemp("fleet-cache")),
        worker_args=["--window-ms", "1", "--sweep-interval", "0"],
    )
    with run_server_in_thread(front, startup_timeout=90.0):
        yield front


@pytest.fixture
def client(fleet):
    with Client(port=fleet.port) as instance:
        yield instance


def _post(fleet, path, payload=None):
    conn = http.client.HTTPConnection("127.0.0.1", fleet.port, timeout=90)
    try:
        body = json.dumps(payload or {}).encode()
        conn.request("POST", path, body, {"Content-Type": "application/json"})
        response = conn.getresponse()
        return response.status, json.loads(response.read())
    finally:
        conn.close()


class TestFleetServing:
    def test_validates_worker_count(self):
        with pytest.raises(ServiceError):
            FleetFront(workers=0)

    def test_healthz_aggregates_all_workers(self, client, fleet):
        payload = client.healthz()
        assert payload["status"] == "ok"
        assert payload["fleet"] is True
        assert payload["workers"] == 2
        assert {entry["slot"] for entry in payload["worker_health"]} == {"w0", "w1"}

    def test_compile_miss_then_hit(self, client):
        terms = random_pauli_terms(_rng(10), 4, 6)
        reference = repro.compile(terms, level=3)
        first = client.compile(terms)
        second = client.compile(terms)
        assert not first.cache_hit
        assert second.cache_hit
        assert first.result.circuit == reference.circuit
        assert second.result.circuit == reference.circuit

    def test_result_roundtrip_through_the_ring(self, client):
        terms = random_pauli_terms(_rng(11), 4, 6)
        response = client.compile(terms)
        fetched = client.result(response.key)
        assert fetched is not None
        assert fetched.circuit == response.result.circuit
        assert client.delete_result(response.key)
        assert client.result(response.key) is None

    def test_requests_shard_across_workers(self, client, fleet):
        for seed in range(12, 32):
            client.compile(random_pauli_terms(_rng(seed), 4, 5), include_result=False)
        per_worker = {
            entry["slot"]: entry["scheduler"]["jobs_submitted"]
            for entry in client.metrics()["per_worker"]
        }
        assert all(jobs > 0 for jobs in per_worker.values()), per_worker

    def test_metrics_rollup(self, client):
        client.compile(random_pauli_terms(_rng(40), 4, 5), include_result=False)
        payload = client.metrics()
        assert payload["workers"] == 2
        assert payload["scheduler"]["jobs_submitted"] == sum(
            entry["scheduler"]["jobs_submitted"] for entry in payload["per_worker"]
        )
        assert payload["telemetry"]["counters"]["service.http_requests"] >= 1
        assert payload["cache"]["hits"] >= 1
        assert payload["fleet"]["counters"]["fleet.http_requests"] >= 1

    def test_bind_shards_on_template_key(self, client, fleet):
        from repro.parametric import ParametricProgram

        terms = random_pauli_terms(_rng(41), 4, 6)
        program = ParametricProgram.from_terms(terms, [i % 2 for i in range(6)])
        handle = client.compile_template(program)
        local = None
        for _ in range(3):
            response = client.bind([0.3, 0.7], template_key=handle.template_key)
            if local is None:
                local = response.result
            assert response.result.circuit == local.circuit
        # the ring sends every bind of this template to one worker
        slot = fleet.ring.lookup(handle.template_key)
        assert slot in fleet.workers

    def test_unknown_path_propagates_worker_404(self, client):
        with pytest.raises(ServiceError) as excinfo:
            client._request("GET", "/nope")
        assert excinfo.value.status == 404


class TestFleetLifecycle:
    def test_rolling_restart_preserves_cache(self, client, fleet):
        terms = random_pauli_terms(_rng(50), 4, 6)
        first = client.compile(terms)
        status, payload = _post(fleet, "/fleet/restart")
        assert status == 200
        assert payload["restarted"] == ["w0", "w1"]
        # the shared disk cache survives the worker processes
        second = client.compile(terms)
        assert second.cache_hit
        assert second.key == first.key
        assert client.healthz()["status"] == "ok"

    def test_dead_worker_is_respawned_on_traffic(self, client, fleet):
        for handle in fleet.workers.values():
            handle.process.kill()
            handle.process.wait()
        assert client.healthz()["status"] == "ok"
        stats = fleet.stats()
        assert all(entry["alive"] for entry in stats["workers"].values())
        assert fleet.telemetry.counter("fleet.worker_deaths") >= 1
