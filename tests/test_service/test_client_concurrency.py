"""Client connection behavior: keep-alive reuse, restarts, fleet drains."""

import threading

import numpy as np
import pytest

from repro.service.client import Client
from repro.service.fleet import FleetFront
from repro.service.server import ServiceServer, run_server_in_thread

from tests.conftest import random_pauli_terms


def _rng(seed=0):
    return np.random.default_rng(seed)


class TestKeepAliveReuse:
    def test_sequential_requests_share_one_connection(self, tmp_path):
        server = ServiceServer(cache_dir=tmp_path, window_seconds=0.001)
        with run_server_in_thread(server):
            with Client(port=server.port) as client:
                client.healthz()
                connection = client._connection
                assert connection is not None
                for seed in range(3):
                    client.compile(
                        random_pauli_terms(_rng(seed), 4, 5), include_result=False
                    )
                    client.metrics()
                # every request rode the same keep-alive socket
                assert client._connection is connection

    def test_threads_with_own_clients_agree(self, tmp_path):
        server = ServiceServer(cache_dir=tmp_path, window_seconds=0.002)
        terms = random_pauli_terms(_rng(7), 4, 6)
        keys = []
        errors = []

        def _one():
            try:
                with Client(port=server.port) as client:
                    keys.append(client.compile(terms, include_result=False).key)
            except Exception as error:  # noqa: BLE001 — surfaced by the assert
                errors.append(error)

        with run_server_in_thread(server):
            threads = [threading.Thread(target=_one) for _ in range(6)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
        assert not errors
        assert len(set(keys)) == 1  # all six resolved to one artifact


class TestServerRestartMidSession:
    def test_client_survives_a_server_restart(self, tmp_path):
        first = ServiceServer(cache_dir=tmp_path, window_seconds=0.001)
        terms = random_pauli_terms(_rng(20), 4, 6)
        with run_server_in_thread(first):
            port = first.port
            client = Client(port=port)
            miss = client.compile(terms)
            assert not miss.cache_hit
        # same port, fresh process-equivalent: the keep-alive socket the
        # client still holds is now dead and must be replaced transparently
        second = ServiceServer(cache_dir=tmp_path, port=port, window_seconds=0.001)
        with run_server_in_thread(second):
            hit = client.compile(terms)
            assert hit.cache_hit  # the disk cache outlived the restart
            assert hit.key == miss.key
        client.close()

    def test_client_reports_connection_refused_when_down(self, tmp_path):
        server = ServiceServer(cache_dir=tmp_path)
        with run_server_in_thread(server):
            port = server.port
            client = Client(port=port, timeout=2.0)
            client.healthz()
        with pytest.raises(OSError):
            client.healthz()
        client.close()


class TestFleetDrainMidSession:
    def test_keep_alive_sessions_span_a_rolling_restart(self, tmp_path):
        fleet = FleetFront(
            workers=2,
            cache_dir=str(tmp_path / "cache"),
            worker_args=["--window-ms", "1", "--sweep-interval", "0"],
        )
        terms = random_pauli_terms(_rng(30), 4, 6)
        with run_server_in_thread(fleet, startup_timeout=90.0):
            with Client(port=fleet.port) as client:
                before = client.compile(terms)
                connection = client._connection
                import http.client as http_client
                import json

                conn = http_client.HTTPConnection("127.0.0.1", fleet.port, timeout=90)
                conn.request(
                    "POST", "/fleet/restart", b"{}",
                    {"Content-Type": "application/json"},
                )
                response = conn.getresponse()
                assert response.status == 200
                assert json.loads(response.read())["restarted"] == ["w0", "w1"]
                conn.close()
                # the front never dropped our keep-alive session, and the
                # restarted worker re-warms from the shared disk cache
                after = client.compile(terms)
                assert client._connection is connection
                assert after.cache_hit
                assert after.key == before.key
