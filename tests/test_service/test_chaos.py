"""Chaos suite: a 2-worker fleet under injected kills, corruption and slow
handlers must answer every request definitively and converge healthy."""

import http.client
import json
import threading
import time

import numpy as np
import pytest

import repro
from repro.service import faults
from repro.service.client import Client
from repro.service.fleet import FleetFront
from repro.service.server import run_server_in_thread

from tests.conftest import random_pauli_terms

#: load shape: THREADS clients, each issuing REQUESTS_PER_THREAD compiles
#: drawn round-robin from PROGRAM_POOL distinct programs (a cached-hit-heavy
#: mix, like production traffic)
THREADS = 4
REQUESTS_PER_THREAD = 50
PROGRAM_POOL = 10


@pytest.fixture(autouse=True)
def clean_front_registry():
    """The front shares this process's registry; never leak rules across tests."""
    faults.REGISTRY.clear()
    yield
    faults.REGISTRY.clear()


@pytest.fixture(scope="module")
def chaos_fleet(tmp_path_factory):
    front = FleetFront(
        workers=2,
        cache_dir=str(tmp_path_factory.mktemp("chaos-cache")),
        worker_args=["--window-ms", "1", "--sweep-interval", "0"],
        enable_faults=True,
        breaker_cooldown=0.2,
    )
    with run_server_in_thread(front, startup_timeout=90.0):
        yield front


def _post(front, path, payload):
    conn = http.client.HTTPConnection("127.0.0.1", front.port, timeout=90)
    try:
        conn.request(
            "POST", path, json.dumps(payload).encode(),
            {"Content-Type": "application/json"},
        )
        response = conn.getresponse()
        return response.status, json.loads(response.read())
    finally:
        conn.close()


def _get(front, path, timeout=90):
    conn = http.client.HTTPConnection("127.0.0.1", front.port, timeout=timeout)
    try:
        conn.request("GET", path)
        response = conn.getresponse()
        return response.status, json.loads(response.read())
    finally:
        conn.close()


def _key_owned_by(front, slot):
    """A well-formed (64-hex) artifact key the ring routes to ``slot``."""
    for index in range(10_000):
        key = f"{index:064x}"
        if front.ring.lookup(key) == slot:
            return key
    raise AssertionError(f"no key found for slot {slot}")


def _wait_healthy(front, timeout=60.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        try:
            status, payload = _get(front, "/healthz")
            if status == 200 and payload["status"] == "ok":
                return payload
        except OSError:
            pass
        time.sleep(0.2)
    raise AssertionError("fleet did not converge healthy in time")


class TestChaos:
    def test_worker_kill_mid_request_is_healed(self, chaos_fleet):
        """A hard worker kill mid-request: respawn + retry, never a hang."""
        deaths_before = chaos_fleet.telemetry.counter("fleet.worker_deaths")
        status, payload = _post(
            chaos_fleet,
            "/fault",
            {
                "clear": True,
                "rules": [
                    {"site": "server.handle", "kind": "kill", "times": 1,
                     "worker": "w1"},
                ],
            },
        )
        assert status == 200
        assert payload["workers"]["w1"]["status"] == 200
        # the first w1-bound request eats the kill; the front respawns the
        # worker into its slot and re-sends, so the caller still gets the
        # definitive answer (a 404 for a key nobody stored)
        key = _key_owned_by(chaos_fleet, "w1")
        status, _ = _get(chaos_fleet, f"/result/{key}")
        assert status == 404
        assert chaos_fleet.telemetry.counter("fleet.worker_deaths") > deaths_before
        health = _wait_healthy(chaos_fleet)
        assert health["workers"] == 2

    def test_front_upstream_fault_degrades_then_recovers(self, chaos_fleet):
        # no "clear" here: clearing broadcasts to the workers through the
        # same upstream path and would consume the trips before the probe
        status, _ = _post(
            chaos_fleet,
            "/fault",
            {"rules": [{"site": "fleet.upstream", "kind": "error", "times": 2}]},
        )
        assert status == 200
        # one /healthz forwards to both workers, eating both trips: the
        # report is a definitive degraded aggregate, not a hang
        status, payload = _get(chaos_fleet, "/healthz")
        assert status == 500
        assert payload["status"] == "degraded"
        _wait_healthy(chaos_fleet)

    def test_chaos_load_every_request_answered(self, chaos_fleet):
        """The tentpole scenario: kills + corruption + slow handlers +
        transient errors under concurrent load.  Every request must resolve
        (no hangs), virtually all successfully thanks to retries, every
        returned artifact bit-exact, and the fleet healthy afterwards."""
        rng = np.random.default_rng(2026)
        programs = [random_pauli_terms(rng, 4, 5) for _ in range(PROGRAM_POOL)]
        references = [repro.compile(terms, level=1) for terms in programs]

        status, _ = _post(
            chaos_fleet,
            "/fault",
            {
                "clear": True,
                "seed": 1234,
                "rules": [
                    # a slow handler a fifth of the time
                    {"site": "server.handle", "kind": "delay", "delay_ms": 25,
                     "probability": 0.2},
                    # transient 500s the client retries through
                    {"site": "server.handle", "kind": "error",
                     "probability": 0.05, "times": 4},
                    # disk rot on the shared cache
                    {"site": "cache.read", "kind": "corrupt", "probability": 0.1},
                    # compile-phase failures
                    {"site": "scheduler.compile", "kind": "error",
                     "probability": 0.3, "times": 2},
                    # and at most one hard crash per worker
                    {"site": "server.handle", "kind": "kill",
                     "probability": 0.01, "times": 1},
                ],
            },
        )
        assert status == 200

        results_lock = threading.Lock()
        outcomes = []  # (program_index, circuit-or-None, error-or-None)
        retries_total = [0]

        def _worker(thread_index):
            with Client(
                port=chaos_fleet.port, timeout=90.0, retries=4, backoff=0.02
            ) as client:
                for i in range(REQUESTS_PER_THREAD):
                    index = (thread_index * REQUESTS_PER_THREAD + i) % PROGRAM_POOL
                    try:
                        response = client.compile(programs[index], level=1)
                        record = (index, response.result.circuit, None)
                    except Exception as error:  # noqa: BLE001 — recorded, asserted on
                        record = (index, None, error)
                    with results_lock:
                        outcomes.append(record)
                with results_lock:
                    retries_total[0] += client.retries_performed

        threads = [
            threading.Thread(target=_worker, args=(n,), daemon=True)
            for n in range(THREADS)
        ]
        start = time.monotonic()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=180)
        hung = [thread for thread in threads if thread.is_alive()]
        assert not hung, f"{len(hung)} load threads hung — requests never resolved"
        elapsed = time.monotonic() - start

        total = THREADS * REQUESTS_PER_THREAD
        assert len(outcomes) == total, "every request must produce an outcome"
        failures = [(index, error) for index, _, error in outcomes if error is not None]
        success_rate = 1.0 - len(failures) / total
        assert success_rate >= 0.99, (
            f"success rate {success_rate:.3f} under chaos "
            f"(failures: {failures[:5]}, elapsed {elapsed:.1f}s)"
        )
        # corruption or crashes must never serve a wrong artifact
        for index, circuit, error in outcomes:
            if error is None:
                assert circuit == references[index].circuit

        # disarm everything and require convergence back to healthy
        status, _ = _post(chaos_fleet, "/fault", {"clear": True})
        assert status == 200
        _wait_healthy(chaos_fleet)
        stats = chaos_fleet.stats()
        assert all(entry["alive"] for entry in stats["workers"].values())
        assert all(
            entry["in_flight"] == 0 for entry in stats["workers"].values()
        )

        # the artifacts stayed bit-exact on disk too: a fresh client re-reads
        # every program through the (now fault-free) cache path
        with Client(port=chaos_fleet.port, timeout=90.0) as client:
            for index, terms in enumerate(programs):
                response = client.compile(terms, level=1)
                assert response.result.circuit == references[index].circuit

    def test_metrics_expose_hardening_counters(self, chaos_fleet):
        status, payload = _get(chaos_fleet, "/metrics")
        assert status == 200
        for entry in payload["per_worker"]:
            assert entry["breaker"]["state"] in ("closed", "open", "half-open")
            assert "max_queue_depth" in entry["scheduler"]
            assert "jobs_shed" in entry["scheduler"]
        assert "corrupt_artifacts" in payload["cache"]
        assert "read_errors" in payload["cache"]


class TestDrainTimeout:
    def test_draining_restart_past_drain_timeout_does_not_wedge(self, chaos_fleet):
        """Satellite: a request stuck on a worker cannot wedge a draining
        restart — the drain gives up after ``drain_timeout``, the worker is
        replaced anyway, and the stuck caller still gets a definitive answer
        (the front re-sends to the respawned worker)."""
        _post(chaos_fleet, "/fault", {"clear": True})
        old_timeout = chaos_fleet.drain_timeout
        chaos_fleet.drain_timeout = 1.0
        try:
            # wedge w0 with a one-shot 20 s handler stall, then send it the
            # request that eats the stall
            status, _ = _post(
                chaos_fleet,
                "/fault",
                {"rules": [{"site": "server.handle", "kind": "delay",
                            "delay_ms": 20_000, "times": 1, "worker": "w0"}]},
            )
            assert status == 200
            key = _key_owned_by(chaos_fleet, "w0")
            stuck_outcome = []

            def _stuck_request():
                try:
                    stuck_outcome.append(_get(chaos_fleet, f"/result/{key}"))
                except Exception as error:  # noqa: BLE001 — recorded, asserted on
                    stuck_outcome.append(error)

            stuck = threading.Thread(target=_stuck_request, daemon=True)
            stuck.start()
            time.sleep(0.5)  # let it reach the stalled worker

            timeouts_before = chaos_fleet.telemetry.counter("fleet.drain_timeouts")
            start = time.monotonic()
            status, payload = _post(chaos_fleet, "/fleet/restart", {})
            elapsed = time.monotonic() - start
            assert status == 200
            assert payload["restarted"] == ["w0", "w1"]
            # the restart gave up draining instead of waiting out the stall
            assert elapsed < 15.0, f"restart took {elapsed:.1f}s — drain wedged"
            assert (
                chaos_fleet.telemetry.counter("fleet.drain_timeouts")
                > timeouts_before
            )

            # the stuck caller resolves (its retry reaches the fresh worker,
            # which has no stall armed and answers 404) — never a hang
            stuck.join(timeout=60)
            assert not stuck.is_alive(), "the drained-over request hung"
            assert stuck_outcome and not isinstance(stuck_outcome[0], Exception)
            assert stuck_outcome[0][0] == 404
            _wait_healthy(chaos_fleet)
        finally:
            chaos_fleet.drain_timeout = old_timeout
            _post(chaos_fleet, "/fault", {"clear": True})
