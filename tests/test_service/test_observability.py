"""Distributed tracing + Prometheus exposition across the serving stack.

Unit coverage of the tracer (sampling, ring buffer, stitching helpers) and
the Prometheus renderer/parser, then end-to-end: a traced compile through a
single in-thread server and through a 2-worker fleet must come back as one
stitched trace whose span durations are consistent with the measured
end-to-end latency — including the chaos case where the request only
survives via a retry and the failed attempt's span stays in the trace.
"""

import http.client
import json
import time

import pytest

from repro.observability import (
    TRACER,
    TraceContext,
    Tracer,
    merge_trace_spans,
    merge_trace_summaries,
    parse_prometheus_text,
    render_prometheus,
)
from repro.service import faults
from repro.service.cache import ArtifactCache
from repro.service.client import Client
from repro.service.fleet import FleetFront
from repro.service.server import ServiceServer, run_server_in_thread
from repro.service.telemetry import Telemetry
from repro.workloads.registry import get_benchmark


@pytest.fixture(autouse=True)
def clean_tracer_and_faults():
    """The tracer and fault registry are process-global; never leak spans."""
    TRACER.clear()
    faults.REGISTRY.clear()
    yield
    TRACER.clear()
    faults.REGISTRY.clear()


# ---------------------------------------------------------------------- #
# Head sampling
# ---------------------------------------------------------------------- #
class TestSampling:
    def test_explicit_trace_id_always_samples(self):
        tracer = Tracer()
        ctx = tracer.sample_request({"x-repro-trace-id": "AB" * 16}, 0.0)
        assert ctx is not None
        assert ctx.trace_id == "ab" * 16  # normalized to lower case
        assert ctx.span_id is None

    def test_parent_span_header_rides_along(self):
        tracer = Tracer()
        headers = {
            "x-repro-trace-id": "cd" * 16,
            "x-repro-parent-span": "0123456789abcdef",
        }
        ctx = tracer.sample_request(headers, 0.0)
        assert ctx.span_id == "0123456789abcdef"

    def test_force_off_beats_explicit_id(self):
        tracer = Tracer()
        headers = {"x-repro-trace-id": "ab" * 16, "x-repro-trace": "0"}
        assert tracer.sample_request(headers, 1.0) is None

    def test_force_on_mints_an_id(self):
        tracer = Tracer()
        ctx = tracer.sample_request({"x-repro-trace": "1"}, 0.0)
        assert ctx is not None and len(ctx.trace_id) == 32

    def test_malformed_id_is_ignored(self):
        tracer = Tracer()
        assert tracer.sample_request({"x-repro-trace-id": "not-hex!"}, 0.0) is None

    def test_sample_rate_extremes(self):
        tracer = Tracer()
        assert all(tracer.sample_request({}, 0.0) is None for _ in range(50))
        assert all(tracer.sample_request({}, 1.0) is not None for _ in range(50))


# ---------------------------------------------------------------------- #
# Ring buffer + span handles
# ---------------------------------------------------------------------- #
class TestTracerRing:
    def test_record_and_query(self):
        tracer = Tracer()
        root = tracer.record("a" * 32, "root", 100.0, 0.5)
        tracer.record("a" * 32, "child", 100.1, 0.2, parent_id=root)
        spans = tracer.trace("A" * 32)  # id lookup is case-insensitive
        assert [s["name"] for s in spans] == ["root", "child"]
        assert spans[1]["parent_id"] == root

    def test_ring_drops_oldest_at_capacity(self):
        tracer = Tracer(capacity=4)
        for index in range(6):
            tracer.record("b" * 32, f"span{index}", float(index), 0.01)
        assert tracer.snapshot()["buffered_spans"] == 4
        assert tracer.spans_dropped == 2
        names = [s["name"] for s in tracer.trace("b" * 32)]
        assert names == ["span2", "span3", "span4", "span5"]

    def test_resize_keeps_newest(self):
        tracer = Tracer(capacity=8)
        for index in range(8):
            tracer.record("c" * 32, f"span{index}", float(index), 0.01)
        tracer.resize(2)
        assert tracer.capacity == 2
        assert [s["name"] for s in tracer.trace("c" * 32)] == ["span6", "span7"]

    def test_span_handle_tags_escaping_exception(self):
        tracer = Tracer()
        ctx = TraceContext("d" * 32)
        with pytest.raises(RuntimeError):
            with tracer.span(ctx, "boom"):
                raise RuntimeError("kaput")
        (span,) = tracer.trace("d" * 32)
        assert span["error"] == "RuntimeError: kaput"

    def test_null_handle_for_unsampled(self):
        tracer = Tracer()
        with tracer.span(None, "ignored") as handle:
            handle.tag("key", "value").set_error("nope")
        assert handle.context is None
        assert tracer.snapshot()["spans_recorded"] == 0

    def test_traces_summaries(self):
        tracer = Tracer()
        root = tracer.record("e" * 32, "server.handle", 10.0, 1.0)
        tracer.record("e" * 32, "scheduler.batch", 10.2, 0.5,
                      parent_id=root, error="boom")
        tracer.record("f" * 32, "server.handle", 20.0, 0.1)
        newest, oldest = tracer.traces()
        assert newest["trace_id"] == "f" * 32
        assert oldest["spans"] == 2 and oldest["errors"] == 1
        assert oldest["root"] == "server.handle"
        assert oldest["duration_seconds"] == pytest.approx(1.0)


class TestStitching:
    def test_merge_trace_spans_dedupes_by_span_id(self):
        shared = {"trace_id": "a" * 32, "span_id": "s1", "parent_id": None,
                  "name": "server.handle", "start_time": 2.0,
                  "duration_seconds": 0.1}
        other = dict(shared, span_id="s2", name="fleet.forward", start_time=1.0)
        merged = merge_trace_spans([[shared, other], [shared]])
        assert [s["span_id"] for s in merged] == ["s2", "s1"]  # time-sorted

    def test_merge_trace_summaries_unions_windows(self):
        front = [{"trace_id": "a" * 32, "root": "fleet.forward",
                  "start_time": 1.0, "duration_seconds": 0.5,
                  "spans": 2, "errors": 0}]
        worker = [{"trace_id": "a" * 32, "root": "server.handle",
                   "start_time": 1.1, "duration_seconds": 1.0,
                   "spans": 3, "errors": 1}]
        (merged,) = merge_trace_summaries([front, worker])
        assert merged["root"] == "fleet.forward"  # earliest start wins
        assert merged["spans"] == 5 and merged["errors"] == 1
        # union window: starts at 1.0, ends at 1.1 + 1.0
        assert merged["duration_seconds"] == pytest.approx(1.1)


# ---------------------------------------------------------------------- #
# Prometheus text exposition
# ---------------------------------------------------------------------- #
def _sample_metrics() -> dict:
    telemetry = Telemetry()
    telemetry.inc("service.http_requests", 7)
    telemetry.observe("service.request_seconds", 0.002)
    telemetry.observe("service.request_seconds", 0.3)
    return {"telemetry": telemetry.snapshot(), "cache": {"entries": 3, "hits": 9}}


class TestPrometheusRender:
    def test_round_trips_through_strict_parser(self):
        text = render_prometheus([(_sample_metrics(), {})])
        families = parse_prometheus_text(text)
        counter = families["repro_service_http_requests_total"]
        assert counter["type"] == "counter"
        assert counter["samples"][()] == 7.0
        histogram = families["repro_service_request_seconds"]
        assert histogram["type"] == "histogram"
        assert histogram["count"][()] == 2.0
        assert families["repro_cache_entries"]["type"] == "gauge"

    def test_per_worker_labels_keep_samples_distinct(self):
        text = render_prometheus([
            (_sample_metrics(), {"worker": "w0"}),
            (_sample_metrics(), {"worker": "w1"}),
        ])
        families = parse_prometheus_text(text)
        samples = families["repro_service_http_requests_total"]["samples"]
        assert set(samples) == {(("worker", "w0"),), (("worker", "w1"),)}

    def test_histogram_buckets_are_cumulative_and_end_at_inf(self):
        text = render_prometheus([(_sample_metrics(), {})])
        values = [
            float(line.rsplit(" ", 1)[1])
            for line in text.splitlines()
            if line.startswith("repro_service_request_seconds_bucket")
        ]
        assert values == sorted(values)
        assert values[-1] == 2.0  # +Inf bucket equals the observation count

    def test_payload_without_raw_buckets_degrades_to_gauges(self):
        metrics = _sample_metrics()
        metrics["telemetry"]["latency"]["service.request_seconds"].pop("buckets")
        families = parse_prometheus_text(render_prometheus([(metrics, {})]))
        assert "repro_service_request_seconds" not in families
        assert families["repro_service_request_seconds_count"]["type"] == "gauge"


class TestPrometheusParserStrictness:
    def test_rejects_sample_without_type(self):
        with pytest.raises(ValueError, match="TYPE"):
            parse_prometheus_text("repro_orphan_total 1\n")

    def test_rejects_duplicate_samples(self):
        text = (
            "# TYPE repro_x_total counter\n"
            "repro_x_total 1\n"
            "repro_x_total 2\n"
        )
        with pytest.raises(ValueError, match="duplicate"):
            parse_prometheus_text(text)

    def test_rejects_non_monotone_buckets(self):
        text = (
            "# TYPE repro_h histogram\n"
            'repro_h_bucket{le="0.1"} 5\n'
            'repro_h_bucket{le="1"} 3\n'
            'repro_h_bucket{le="+Inf"} 5\n'
            "repro_h_sum 1.0\n"
            "repro_h_count 5\n"
        )
        with pytest.raises(ValueError):
            parse_prometheus_text(text)

    def test_rejects_inf_bucket_count_mismatch(self):
        text = (
            "# TYPE repro_h histogram\n"
            'repro_h_bucket{le="+Inf"} 4\n'
            "repro_h_sum 1.0\n"
            "repro_h_count 5\n"
        )
        with pytest.raises(ValueError):
            parse_prometheus_text(text)


# ---------------------------------------------------------------------- #
# Single-server integration
# ---------------------------------------------------------------------- #
@pytest.fixture(scope="module")
def traced_server(tmp_path_factory):
    server = ServiceServer(
        cache=ArtifactCache(str(tmp_path_factory.mktemp("trace-cache"))),
        window_seconds=0.001,
        trace_sample=0.0,  # only explicitly traced requests sample
    )
    with run_server_in_thread(server):
        yield server


class TestServerTracing:
    def test_traced_compile_yields_full_span_tree(self, traced_server):
        terms = get_benchmark("H2O").terms()
        with Client(port=traced_server.port, trace=True) as client:
            started = time.perf_counter()
            client.compile(terms, include_result=False, use_cache=True)
            e2e_seconds = time.perf_counter() - started
            trace = client.trace()
        assert trace["trace_id"] == client.last_trace_id
        by_name = {}
        for span in trace["spans"]:
            by_name.setdefault(span["name"], []).append(span)
        for expected in ("server.handle", "scheduler.queue_wait",
                         "scheduler.batch", "cache.read", "cache.write"):
            assert expected in by_name, f"missing span {expected}"
        # a cold compile records the per-pass children under the batch span
        batch = by_name["scheduler.batch"][0]
        passes = [s for name, spans in by_name.items() if name.startswith("pass.")
                  for s in spans]
        assert passes, "compile pass spans missing"
        assert all(s["parent_id"] == batch["span_id"] for s in passes)
        assert sum(s["duration_seconds"] for s in passes) <= (
            batch["duration_seconds"] + 0.005
        )
        # durations are consistent with the measured end-to-end latency
        handle = by_name["server.handle"][0]
        assert handle["duration_seconds"] <= e2e_seconds
        assert batch["duration_seconds"] <= handle["duration_seconds"] + 0.005
        assert by_name["scheduler.queue_wait"][0]["parent_id"] == handle["span_id"]

    def test_untraced_requests_record_nothing(self, traced_server):
        TRACER.clear()
        terms = get_benchmark("H2O").terms()
        with Client(port=traced_server.port) as client:
            client.compile(terms, include_result=False)
        assert TRACER.snapshot()["spans_recorded"] == 0

    def test_trace_response_header_and_404(self, traced_server):
        with Client(port=traced_server.port, trace=True) as client:
            client.healthz()
            assert client.trace("e" * 32) is None  # unknown id → 404 → None
            assert client.trace() is not None  # the healthz trace itself

    def test_traces_listing_respects_limit(self, traced_server):
        with Client(port=traced_server.port, trace=True) as client:
            for _ in range(3):
                client.healthz()
            listed = client.traces(limit=2)
        assert len(listed) == 2
        assert all(summary["root"] == "server.handle" for summary in listed)

    def test_prometheus_endpoint_parses_strictly(self, traced_server):
        with Client(port=traced_server.port) as client:
            families = parse_prometheus_text(client.metrics_prometheus())
        assert families["repro_service_http_requests_total"]["type"] == "counter"
        assert families["repro_service_request_seconds"]["type"] == "histogram"
        assert families["repro_tracer_buffered_spans"]["type"] == "gauge"

    def test_unknown_metrics_format_is_rejected(self, traced_server):
        connection = http.client.HTTPConnection(
            "127.0.0.1", traced_server.port, timeout=30
        )
        try:
            connection.request("GET", "/metrics?format=xml")
            assert connection.getresponse().status == 400
        finally:
            connection.close()


class TestSlowRequestLog:
    def test_slow_request_emits_structured_line(self, tmp_path, capfd):
        server = ServiceServer(
            cache=ArtifactCache(str(tmp_path / "cache")),
            window_seconds=0.001,
            trace_sample=0.0,
            slow_request_ms=0.0001,  # everything is "slow"
        )
        with run_server_in_thread(server):
            with Client(port=server.port, trace=True) as client:
                client.healthz()
                trace_id = client.last_trace_id
        lines = [
            json.loads(line)
            for line in capfd.readouterr().err.splitlines()
            if line.startswith("{") and '"slow_request"' in line
        ]
        record = next(r for r in lines if r["trace_id"] == trace_id)
        assert record["path"] == "/healthz"
        assert record["status"] == 200
        assert record["duration_ms"] >= 0
        assert any(span["name"] == "server.handle" for span in record["spans"])
        assert server.telemetry.counter("service.slow_requests") >= 1


# ---------------------------------------------------------------------- #
# Fleet integration: stitching, retry survival, per-worker labels
# ---------------------------------------------------------------------- #
@pytest.fixture(scope="module")
def traced_fleet(tmp_path_factory):
    front = FleetFront(
        workers=2,
        cache_dir=str(tmp_path_factory.mktemp("trace-fleet-cache")),
        worker_args=["--window-ms", "1", "--sweep-interval", "0"],
        enable_faults=True,
        breaker_cooldown=0.2,
        trace_sample=0.0,
    )
    with run_server_in_thread(front, startup_timeout=120.0):
        yield front


def _post(front, path, payload):
    connection = http.client.HTTPConnection("127.0.0.1", front.port, timeout=90)
    try:
        connection.request(
            "POST", path, json.dumps(payload).encode(),
            {"Content-Type": "application/json"},
        )
        response = connection.getresponse()
        return response.status, json.loads(response.read())
    finally:
        connection.close()


class TestFleetTracing:
    def test_stitched_trace_covers_front_and_worker(self, traced_fleet):
        terms = get_benchmark("H2O").terms()
        with Client(port=traced_fleet.port, trace=True) as client:
            started = time.perf_counter()
            client.compile(terms, include_result=False)
            e2e_seconds = time.perf_counter() - started
            trace = client.trace()
        assert trace["stitched"] is True
        names = {span["name"] for span in trace["spans"]}
        assert {"fleet.forward", "fleet.attempt", "server.handle",
                "scheduler.queue_wait", "scheduler.batch"} <= names
        spans = {span["span_id"]: span for span in trace["spans"]}
        # the worker's handle span hangs under the front's attempt span,
        # which hangs under fleet.forward — one connected tree
        handle = next(s for s in trace["spans"] if s["name"] == "server.handle")
        attempt = spans[handle["parent_id"]]
        assert attempt["name"] == "fleet.attempt"
        forward = spans[attempt["parent_id"]]
        assert forward["name"] == "fleet.forward"
        assert forward["duration_seconds"] <= e2e_seconds
        assert handle["duration_seconds"] <= attempt["duration_seconds"] + 0.005

    def test_retry_survivor_keeps_failed_attempt_span(self, traced_fleet):
        # one injected 500 per worker: the first attempt fails, the client's
        # retry (same trace id) succeeds — the trace must show both
        status, _ = _post(traced_fleet, "/fault", {
            "rules": [{"site": "server.handle", "kind": "error",
                       "probability": 1.0, "times": 1}],
        })
        assert status == 200
        terms = get_benchmark("H2O").terms()
        try:
            with Client(port=traced_fleet.port, trace=True, retries=3,
                        backoff=0.01) as client:
                client.compile(terms, include_result=False)
                assert client.retries_performed >= 1
                trace = client.trace()
        finally:
            _post(traced_fleet, "/fault", {"clear": True})
        handles = [s for s in trace["spans"] if s["name"] == "server.handle"]
        failed = [s for s in handles if s.get("error")]
        succeeded = [s for s in handles if not s.get("error")]
        assert failed, "failed attempt's span missing from the stitched trace"
        assert "FaultInjectedError" in failed[0]["error"]
        assert succeeded, "surviving attempt's span missing"
        assert len({s["trace_id"] for s in trace["spans"]}) == 1

    def test_fleet_prometheus_has_per_worker_labels(self, traced_fleet):
        with Client(port=traced_fleet.port) as client:
            families = parse_prometheus_text(client.metrics_prometheus())
        workers = {
            dict(labelset).get("worker")
            for family in families.values()
            for labelset in family["samples"]
        }
        assert {"w0", "w1", "front"} <= workers
        requests = families["repro_service_http_requests_total"]["samples"]
        assert (("worker", "w0"),) in requests and (("worker", "w1"),) in requests

    def test_fleet_traces_listing_merges_workers(self, traced_fleet):
        terms = get_benchmark("H2O").terms()
        with Client(port=traced_fleet.port, trace=True) as client:
            client.compile(terms, include_result=False)
            listed = client.traces(limit=10)
        entry = next(t for t in listed if t["trace_id"] == client.last_trace_id)
        # the front's forward spans and the worker's handle spans both count
        assert entry["spans"] >= 3
