"""Telemetry histograms, with a focus on the sub-millisecond bind decades."""

import pytest

from repro.service.telemetry import (
    DEFAULT_BUCKETS,
    LatencyHistogram,
    Telemetry,
    merge_snapshots,
    quantile_from_counts,
)


class TestBuckets:
    def test_strictly_ascending(self):
        assert list(DEFAULT_BUCKETS) == sorted(DEFAULT_BUCKETS)
        assert len(set(DEFAULT_BUCKETS)) == len(DEFAULT_BUCKETS)

    def test_cover_microseconds_to_seconds(self):
        # the bind path reports single- to hundreds of microseconds; without
        # the sub-millisecond decades every observation lands in one bucket
        assert DEFAULT_BUCKETS[0] <= 0.000001
        assert sum(1 for bound in DEFAULT_BUCKETS if bound < 0.001) >= 6
        assert DEFAULT_BUCKETS[-1] >= 10.0


class TestMicrosecondResolution:
    def test_microsecond_observations_separate(self):
        histogram = LatencyHistogram()
        histogram.observe(0.000002)   # 2 us
        histogram.observe(0.00002)    # 20 us
        histogram.observe(0.0002)     # 200 us
        # three distinct buckets, not one blob
        assert sum(1 for count in histogram.counts if count) == 3

    def test_p50_of_microsecond_traffic_is_sub_100us(self):
        histogram = LatencyHistogram()
        for _ in range(100):
            histogram.observe(0.00003)  # 30 us, typical small-template bind
        assert histogram.quantile(0.5) < 0.0001

    def test_snapshot_fields(self):
        histogram = LatencyHistogram()
        histogram.observe(0.00001)
        histogram.observe(0.0005)
        snap = histogram.snapshot()
        assert snap["count"] == 2
        assert snap["min_seconds"] == 0.00001
        assert snap["max_seconds"] == 0.0005
        assert snap["p50_seconds"] < snap["p99_seconds"]


class TestTelemetry:
    def test_bind_counters_and_histogram(self):
        telemetry = Telemetry()
        telemetry.inc("service.bind_requests")
        telemetry.inc("service.bind_requests")
        with telemetry.timed("service.bind_seconds"):
            pass
        snapshot = telemetry.snapshot()
        assert snapshot["counters"]["service.bind_requests"] == 2
        assert snapshot["latency"]["service.bind_seconds"]["count"] == 1


def _snapshot_of(observations: "list[float]") -> dict:
    telemetry = Telemetry()
    for seconds in observations:
        telemetry.observe("service.request_seconds", seconds)
    return telemetry.snapshot()


class TestMergeSnapshots:
    def test_merged_quantiles_come_from_merged_buckets(self):
        # worker A: 100 fast requests (30 us); worker B: 100 slow (5 ms).
        # The fleet-wide p50 sits in the fast half — taking the max of the
        # per-worker p50s (the old behavior) would wrongly report ~5 ms.
        fast = _snapshot_of([0.00003] * 100)
        slow = _snapshot_of([0.005] * 100)
        merged = merge_snapshots([fast, slow])["latency"]["service.request_seconds"]
        assert merged["count"] == 200
        assert merged["p50_seconds"] <= 0.00005
        # ...while the p99 still reflects the slow tail
        assert merged["p99_seconds"] >= 0.005
        # and the merged raw buckets hold the union of observations
        assert sum(merged["buckets"]["counts"]) == 200

    def test_uneven_workers_weight_by_count(self):
        # 10 slow observations cannot drag the p50 of 990 fast ones
        fast = _snapshot_of([0.00003] * 990)
        slow = _snapshot_of([0.005] * 10)
        merged = merge_snapshots([fast, slow])["latency"]["service.request_seconds"]
        assert merged["p50_seconds"] <= 0.00005
        assert merged["p99_seconds"] <= 0.001

    def test_mismatched_bounds_fall_back_to_conservative_max(self):
        fast = _snapshot_of([0.00003] * 100)
        other = Telemetry()
        other._histograms["service.request_seconds"] = LatencyHistogram(
            buckets=(0.1, 1.0)
        )
        other.observe("service.request_seconds", 0.005)
        merged = merge_snapshots(
            [fast, other.snapshot()]
        )["latency"]["service.request_seconds"]
        assert merged["count"] == 101
        assert "buckets" not in merged
        # conservative: the max of the per-worker quantiles
        assert merged["p50_seconds"] == pytest.approx(0.1)

    def test_payload_without_buckets_falls_back(self):
        fast = _snapshot_of([0.00003] * 100)
        legacy = _snapshot_of([0.005] * 100)
        legacy["latency"]["service.request_seconds"].pop("buckets")
        merged = merge_snapshots(
            [fast, legacy]
        )["latency"]["service.request_seconds"]
        assert merged["count"] == 200
        assert merged["p50_seconds"] >= 0.005  # old max-of-quantiles behavior


class TestQuantileFromCounts:
    def test_matches_single_histogram_quantile(self):
        histogram = LatencyHistogram()
        for seconds in [0.00001, 0.0005, 0.0005, 0.02]:
            histogram.observe(seconds)
        snap = histogram.snapshot()
        for fraction in (0.5, 0.99):
            assert quantile_from_counts(
                snap["buckets"]["bounds"], snap["buckets"]["counts"],
                fraction, snap["max_seconds"],
            ) == histogram.quantile(fraction)

    def test_empty_counts(self):
        assert quantile_from_counts([0.001], [0, 0], 0.5, 9.9) == 0.0
