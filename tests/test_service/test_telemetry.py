"""Telemetry histograms, with a focus on the sub-millisecond bind decades."""

from repro.service.telemetry import DEFAULT_BUCKETS, LatencyHistogram, Telemetry


class TestBuckets:
    def test_strictly_ascending(self):
        assert list(DEFAULT_BUCKETS) == sorted(DEFAULT_BUCKETS)
        assert len(set(DEFAULT_BUCKETS)) == len(DEFAULT_BUCKETS)

    def test_cover_microseconds_to_seconds(self):
        # the bind path reports single- to hundreds of microseconds; without
        # the sub-millisecond decades every observation lands in one bucket
        assert DEFAULT_BUCKETS[0] <= 0.000001
        assert sum(1 for bound in DEFAULT_BUCKETS if bound < 0.001) >= 6
        assert DEFAULT_BUCKETS[-1] >= 10.0


class TestMicrosecondResolution:
    def test_microsecond_observations_separate(self):
        histogram = LatencyHistogram()
        histogram.observe(0.000002)   # 2 us
        histogram.observe(0.00002)    # 20 us
        histogram.observe(0.0002)     # 200 us
        # three distinct buckets, not one blob
        assert sum(1 for count in histogram.counts if count) == 3

    def test_p50_of_microsecond_traffic_is_sub_100us(self):
        histogram = LatencyHistogram()
        for _ in range(100):
            histogram.observe(0.00003)  # 30 us, typical small-template bind
        assert histogram.quantile(0.5) < 0.0001

    def test_snapshot_fields(self):
        histogram = LatencyHistogram()
        histogram.observe(0.00001)
        histogram.observe(0.0005)
        snap = histogram.snapshot()
        assert snap["count"] == 2
        assert snap["min_seconds"] == 0.00001
        assert snap["max_seconds"] == 0.0005
        assert snap["p50_seconds"] < snap["p99_seconds"]


class TestTelemetry:
    def test_bind_counters_and_histogram(self):
        telemetry = Telemetry()
        telemetry.inc("service.bind_requests")
        telemetry.inc("service.bind_requests")
        with telemetry.timed("service.bind_seconds"):
            pass
        snapshot = telemetry.snapshot()
        assert snapshot["counters"]["service.bind_requests"] == 2
        assert snapshot["latency"]["service.bind_seconds"]["count"] == 1
