"""Fault injection and the hardening it exercises: registry, quarantine,
deadlines, shedding, dedup, client retries, circuit breakers."""

import asyncio
import http.client
import json
import time

import numpy as np
import pytest

import repro
from repro.exceptions import (
    FaultInjectedError,
    OverloadedError,
    ServiceError,
)
from repro.service import faults
from repro.service.cache import ArtifactCache
from repro.service.client import Client
from repro.service.faults import FaultRegistry, FaultRule, parse_spec
from repro.service.fleet import CircuitBreaker
from repro.service.scheduler import BatchingScheduler
from repro.service.server import ServiceServer, run_server_in_thread

from tests.conftest import random_pauli_terms


@pytest.fixture(autouse=True)
def clean_registry():
    """Every test leaves the process-wide registry disarmed."""
    faults.REGISTRY.clear()
    yield
    faults.REGISTRY.clear()


class TestParseSpec:
    def test_basic_error_rule(self):
        rules = parse_spec("cache.read:error:0.05")
        assert len(rules) == 1
        assert rules[0].site == "cache.read"
        assert rules[0].kind == "error"
        assert rules[0].probability == 0.05

    def test_probability_defaults_to_one(self):
        assert parse_spec("server.handle:error")[0].probability == 1.0

    def test_delay_durations(self):
        assert parse_spec("a:delay:200ms")[0].delay_seconds == pytest.approx(0.2)
        assert parse_spec("a:delay:1.5s")[0].delay_seconds == pytest.approx(1.5)
        assert parse_spec("a:delay:0.25")[0].delay_seconds == pytest.approx(0.25)

    def test_delay_with_probability(self):
        rule = parse_spec("worker.handle:delay:200ms:0.5")[0]
        assert rule.delay_seconds == pytest.approx(0.2)
        assert rule.probability == 0.5

    def test_multiple_rules_and_blank_chunks(self):
        rules = parse_spec("a:error:0.1, ,b:delay:10ms,")
        assert [(rule.site, rule.kind) for rule in rules] == [
            ("a", "error"),
            ("b", "delay"),
        ]

    def test_rejects_malformed(self):
        with pytest.raises(ValueError):
            parse_spec("just-a-site")
        with pytest.raises(ValueError):
            parse_spec("a:frobnicate")
        with pytest.raises(ValueError):
            parse_spec("a:delay")  # delay needs a duration
        with pytest.raises(ValueError):
            parse_spec("a:delay:nonsense")
        with pytest.raises(ValueError):
            parse_spec("a:error:1.5")  # probability out of range


class TestFaultRule:
    def test_dict_round_trip(self):
        rule = FaultRule(
            site="server.handle",
            kind="delay",
            probability=0.25,
            delay_seconds=0.03,
            times=2,
            worker="w1",
        )
        clone = FaultRule.from_dict(rule.to_dict())
        assert clone.site == rule.site
        assert clone.kind == rule.kind
        assert clone.probability == rule.probability
        assert clone.delay_seconds == pytest.approx(rule.delay_seconds)
        assert clone.times == 2
        assert clone.worker == "w1"

    def test_from_dict_accepts_duration_strings(self):
        rule = FaultRule.from_dict({"site": "a", "kind": "delay", "delay": "50ms"})
        assert rule.delay_seconds == pytest.approx(0.05)

    def test_from_dict_rejects_unknown_fields_and_bad_times(self):
        with pytest.raises(ValueError):
            FaultRule.from_dict({"site": "a", "kind": "error", "wat": 1})
        with pytest.raises(ValueError):
            FaultRule.from_dict({"site": "a", "kind": "error", "times": 0})
        with pytest.raises(ValueError):
            FaultRule.from_dict("not-a-dict")


class TestFaultRegistry:
    def test_unarmed_fire_is_a_noop(self):
        registry = FaultRegistry()
        registry.fire("anything")  # must not raise

    def test_error_rule_raises(self):
        registry = FaultRegistry()
        registry.configure("spot:error")
        with pytest.raises(FaultInjectedError):
            registry.fire("spot")
        registry.fire("other.site")  # non-matching site untouched

    def test_delay_rule_sleeps(self):
        registry = FaultRegistry()
        registry.configure("spot:delay:30ms")
        start = time.monotonic()
        registry.fire("spot")
        assert time.monotonic() - start >= 0.025

    def test_times_cap(self):
        registry = FaultRegistry()
        registry.add(FaultRule(site="spot", kind="error", times=2))
        for _ in range(2):
            with pytest.raises(FaultInjectedError):
                registry.fire("spot")
        registry.fire("spot")  # cap exhausted: no more trips

    def test_probability_zero_never_fires(self):
        registry = FaultRegistry()
        registry.configure("spot:error:0.0")
        for _ in range(50):
            registry.fire("spot")

    def test_seeded_registries_agree(self):
        def outcomes(seed):
            registry = FaultRegistry(seed=seed)
            registry.configure("spot:error:0.5")
            fired = []
            for _ in range(40):
                try:
                    registry.fire("spot")
                    fired.append(False)
                except FaultInjectedError:
                    fired.append(True)
            return fired

        assert outcomes(7) == outcomes(7)
        assert any(outcomes(7)) and not all(outcomes(7))

    def test_corrupt_bytes(self):
        registry = FaultRegistry(seed=3)
        registry.configure("spot:corrupt")
        data = b"x" * 64
        mangled = registry.corrupt_bytes("spot", data)
        assert mangled != data
        # non-matching site passes data through untouched
        assert registry.corrupt_bytes("elsewhere", data) == data

    def test_kill_uses_exit_indirection(self):
        registry = FaultRegistry()
        registry.configure("spot:kill")
        codes = []
        registry._exit = codes.append
        registry.fire("spot")
        assert codes == [1]

    def test_fire_async(self):
        registry = FaultRegistry()
        registry.configure("spot:error")

        async def go():
            with pytest.raises(FaultInjectedError):
                await registry.fire_async("spot")

        asyncio.run(go())

    def test_configure_replaces_and_clear_disarms(self):
        registry = FaultRegistry()
        registry.configure("a:error")
        registry.configure("b:error")
        assert [rule.site for rule in registry.active()] == ["b"]
        registry.clear()
        assert not registry.armed
        registry.fire("b")


class TestQuarantine:
    def _store_one(self, cache, rng, seed=0):
        terms = random_pauli_terms(rng, 4, 5)
        result = repro.compile(terms, level=1)
        key = cache.key_for(terms, level=1)
        cache.put(key, result)
        return key

    def test_corrupt_artifact_is_quarantined(self, tmp_path, rng):
        cache = ArtifactCache(tmp_path / "cache")
        key = self._store_one(cache, rng)
        cache.forget_memory()
        path = cache._object_path(key)
        path.write_text("{ not json")
        assert cache.get(key) is None
        assert cache.corrupt_artifacts == 1
        assert not path.exists()
        assert cache.quarantine_entries() == 1
        assert cache.stats()["corrupt_artifacts"] == 1

    def test_injected_corruption_degrades_to_a_miss(self, tmp_path, rng):
        cache = ArtifactCache(tmp_path / "cache")
        key = self._store_one(cache, rng)
        cache.forget_memory()
        faults.REGISTRY.reseed(5)
        faults.REGISTRY.configure("cache.read:corrupt")
        assert cache.get(key) is None
        faults.REGISTRY.clear()
        assert cache.corrupt_artifacts == 1

    def test_injected_read_error_degrades_to_a_miss(self, tmp_path, rng):
        cache = ArtifactCache(tmp_path / "cache")
        key = self._store_one(cache, rng)
        cache.forget_memory()
        faults.REGISTRY.configure("cache.read:error")
        assert cache.get(key) is None
        faults.REGISTRY.clear()
        assert cache.read_errors == 1
        # the artifact itself was never touched: next read hits disk
        assert cache.get(key) is not None

    def test_quarantine_is_bounded(self, tmp_path, rng):
        cache = ArtifactCache(tmp_path / "cache")
        cache.max_quarantine = 3
        for seed in range(5):
            key = self._store_one(cache, np.random.default_rng(seed + 100))
            cache.forget_memory()
            cache._object_path(key).write_text("broken")
            assert cache.get(key) is None
            time.sleep(0.01)  # distinct mtimes for the oldest-first prune
        assert cache.corrupt_artifacts == 5
        assert cache.quarantine_entries() <= 3


class TestSchedulerShedding:
    def test_queue_depth_sheds_with_retry_after(self, rng):
        terms = [random_pauli_terms(rng, 4, 4) for _ in range(3)]

        async def go():
            scheduler = BatchingScheduler(window_seconds=0.2, max_queue_depth=1)
            try:
                outcomes = await asyncio.gather(
                    *(scheduler.submit(t, level=1) for t in terms),
                    return_exceptions=True,
                )
            finally:
                scheduler.close()
            return outcomes

        outcomes = asyncio.run(go())
        shed = [o for o in outcomes if isinstance(o, OverloadedError)]
        served = [o for o in outcomes if not isinstance(o, Exception)]
        assert len(shed) == 2 and len(served) == 1
        assert shed[0].retry_after > 0


@pytest.fixture(scope="module")
def fault_server(tmp_path_factory):
    server = ServiceServer(
        cache_dir=str(tmp_path_factory.mktemp("fault-cache")),
        window_seconds=0.001,
        enable_faults=True,
    )
    with run_server_in_thread(server):
        yield server


def _raw_post(server, path, payload, headers=None):
    conn = http.client.HTTPConnection("127.0.0.1", server.port, timeout=30)
    try:
        base = {"Content-Type": "application/json"}
        base.update(headers or {})
        conn.request("POST", path, json.dumps(payload).encode(), base)
        response = conn.getresponse()
        return response.status, json.loads(response.read())
    finally:
        conn.close()


class TestServerHardening:
    def test_fault_endpoint_requires_opt_in(self, tmp_path):
        server = ServiceServer(window_seconds=0.001)
        with run_server_in_thread(server):
            status, payload = _raw_post(server, "/fault", {"spec": "a:error"})
        assert status == 403
        assert payload["type"] == "FaultsDisabled"
        assert not faults.REGISTRY.active()

    def test_fault_endpoint_arms_and_reports(self, fault_server):
        status, payload = _raw_post(
            fault_server, "/fault", {"clear": True, "spec": "cache.read:error:0.5"}
        )
        assert status == 200
        assert payload["active"] == [
            {"site": "cache.read", "kind": "error", "probability": 0.5}
        ]
        status, payload = _raw_post(fault_server, "/fault", {"clear": True})
        assert status == 200 and payload["active"] == []

    def test_fault_endpoint_rejects_bad_specs(self, fault_server):
        status, payload = _raw_post(fault_server, "/fault", {"spec": "nope"})
        assert status == 400 and payload["type"] == "FaultSpec"
        status, _ = _raw_post(
            fault_server, "/fault", {"rules": [{"site": "a", "kind": "error", "x": 1}]}
        )
        assert status == 400

    def test_injected_handler_fault_is_a_500(self, fault_server):
        _raw_post(
            fault_server,
            "/fault",
            {"clear": True, "rules": [{"site": "server.handle", "kind": "error", "times": 1}]},
        )
        with Client(port=fault_server.port) as client:
            with pytest.raises(ServiceError) as excinfo:
                client.healthz()
            assert excinfo.value.status == 500
            assert client.healthz()["status"] == "ok"  # one-shot rule expired

    def test_exhausted_deadline_is_a_504(self, fault_server, rng):
        with Client(port=fault_server.port, deadline=0.0) as client:
            with pytest.raises(ServiceError) as excinfo:
                client.compile(random_pauli_terms(rng, 4, 4), level=1)
        assert excinfo.value.status == 504

    def test_malformed_deadline_is_ignored(self, fault_server):
        conn = http.client.HTTPConnection("127.0.0.1", fault_server.port, timeout=30)
        try:
            conn.request("GET", "/healthz", headers={"X-Repro-Deadline": "soon"})
            assert conn.getresponse().status == 200
        finally:
            conn.close()

    def test_request_id_deduplicates_posts(self, fault_server, rng):
        from repro.service.serialize import program_to_wire

        payload = {
            "program": program_to_wire(random_pauli_terms(rng, 4, 4)),
            "level": 1,
            "include_result": False,
        }
        headers = {"X-Repro-Request-Id": "dedup-test-1"}
        status, first = _raw_post(fault_server, "/compile", payload, headers)
        assert status == 200 and "deduplicated" not in first
        status, replay = _raw_post(fault_server, "/compile", payload, headers)
        assert status == 200
        assert replay["deduplicated"] is True
        assert replay["key"] == first["key"]
        assert fault_server.telemetry.counter("service.request_dedup_hits") >= 1


class TestClientRetries:
    def test_retries_heal_transient_500s(self, fault_server):
        _raw_post(
            fault_server,
            "/fault",
            {"clear": True, "rules": [{"site": "server.handle", "kind": "error", "times": 2}]},
        )
        with Client(port=fault_server.port, retries=3, backoff=0.001) as client:
            assert client.healthz()["status"] == "ok"
            assert client.retries_performed == 2

    def test_4xx_is_never_retried(self, fault_server):
        with Client(port=fault_server.port, retries=3, backoff=0.001) as client:
            with pytest.raises(ServiceError) as excinfo:
                client._request("GET", "/nope")
            assert excinfo.value.status == 404
            assert client.retries_performed == 0

    def test_exhausted_retries_raise_the_last_error(self, fault_server):
        _raw_post(
            fault_server,
            "/fault",
            {"clear": True, "rules": [{"site": "server.handle", "kind": "error", "times": 5}]},
        )
        try:
            with Client(port=fault_server.port, retries=1, backoff=0.001) as client:
                with pytest.raises(ServiceError) as excinfo:
                    client.healthz()
                assert excinfo.value.status == 500
                assert client.retries_performed == 1
        finally:
            _raw_post(fault_server, "/fault", {"clear": True})

    def test_transport_errors_retry_to_a_live_server(self, fault_server):
        with Client(port=fault_server.port, retries=2, backoff=0.001) as client:
            client.healthz()
            # poison the keep-alive socket; the free reconnect plus the retry
            # layer must absorb it without surfacing an error
            client._connection.sock.close()
            assert client.healthz()["status"] == "ok"


class TestTraceFaultSite:
    """Tracing and fault injection must compose, in both directions."""

    def test_trace_endpoints_have_their_own_fault_site(self, fault_server):
        from repro.observability import TRACER

        TRACER.clear()
        _raw_post(
            fault_server,
            "/fault",
            {"clear": True, "rules": [{"site": "server.trace", "kind": "error", "times": 1}]},
        )
        try:
            with Client(port=fault_server.port, trace=True) as client:
                # the serving path is untouched while /trace is faulted...
                assert client.healthz()["status"] == "ok"
                with pytest.raises(ServiceError) as excinfo:
                    client._request("GET", f"/trace/{client.last_trace_id}")
                assert excinfo.value.status == 500
                # ...and the one-shot rule expired: the trace is still there
                assert client.trace() is not None
        finally:
            _raw_post(fault_server, "/fault", {"clear": True})

    def test_tracing_never_masks_injected_faults(self, fault_server):
        from repro.observability import TRACER

        TRACER.clear()
        _raw_post(
            fault_server,
            "/fault",
            {"clear": True, "rules": [{"site": "server.handle", "kind": "error", "times": 1}]},
        )
        try:
            with Client(port=fault_server.port, trace=True) as client:
                with pytest.raises(ServiceError) as excinfo:
                    client.healthz()
                assert excinfo.value.status == 500  # fault fires despite tracing
                spans = TRACER.trace(client.last_trace_id)
                (handle,) = [s for s in spans if s["name"] == "server.handle"]
                assert "FaultInjectedError" in handle["error"]
        finally:
            _raw_post(fault_server, "/fault", {"clear": True})


class TestCircuitBreaker:
    def test_trips_after_consecutive_failures(self):
        breaker = CircuitBreaker(threshold=3, cooldown=60.0)
        assert breaker.record_failure() is None
        assert breaker.record_failure() is None
        assert breaker.record_failure() == "trip"
        assert breaker.state == "open"
        assert breaker.allow() == (False, None)

    def test_success_resets_the_count(self):
        breaker = CircuitBreaker(threshold=2, cooldown=60.0)
        breaker.record_failure()
        breaker.record_success()
        assert breaker.record_failure() is None
        assert breaker.state == "closed"

    def test_half_open_probe_and_reset(self):
        breaker = CircuitBreaker(threshold=1, cooldown=0.01)
        assert breaker.record_failure() == "trip"
        time.sleep(0.02)
        assert breaker.allow() == (True, "probe")
        # only one probe may be outstanding
        assert breaker.allow() == (False, None)
        assert breaker.record_success() == "reset"
        assert breaker.state == "closed"
        assert breaker.allow() == (True, None)

    def test_half_open_failure_reopens(self):
        breaker = CircuitBreaker(threshold=1, cooldown=0.01)
        breaker.record_failure()
        time.sleep(0.02)
        assert breaker.allow() == (True, "probe")
        assert breaker.record_failure() == "trip"
        assert breaker.state == "open"
        assert breaker.allow() == (False, None)

    def test_release_probe_frees_the_slot(self):
        breaker = CircuitBreaker(threshold=1, cooldown=0.01)
        breaker.record_failure()
        time.sleep(0.02)
        assert breaker.allow() == (True, "probe")
        breaker.release_probe()  # aborted forward: no verdict
        assert breaker.allow() == (True, "probe")

    def test_zero_threshold_disables(self):
        breaker = CircuitBreaker(threshold=0)
        for _ in range(10):
            breaker.record_failure()
        assert breaker.allow() == (True, None)
