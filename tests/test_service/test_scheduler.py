"""Request coalescing and the batch executor."""

import asyncio

import pytest

import repro
from repro.exceptions import CompilerError, InvalidProgramError, ReproError
from repro.paulis.pauli import PauliString
from repro.paulis.term import PauliTerm
from repro.service.cache import ArtifactCache
from repro.service.scheduler import BatchingScheduler, CompileJob, execute_batch
from repro.service.telemetry import Telemetry

from tests.conftest import random_pauli_terms


@pytest.fixture
def cache(tmp_path):
    return ArtifactCache(tmp_path / "cache")


class TestExecuteBatch:
    def test_results_in_submission_order(self, cache, rng):
        programs = [random_pauli_terms(rng, 4, 5) for _ in range(4)]
        jobs = [CompileJob(program=p) for p in programs]
        completed = execute_batch(jobs, cache=cache)
        reference = [repro.compile(p, level=3) for p in programs]
        for outcome, expected in zip(completed, reference):
            assert outcome.error is None
            assert not outcome.cache_hit
            assert outcome.result.circuit == expected.circuit

    def test_identical_programs_compile_once(self, cache, rng):
        program = random_pauli_terms(rng, 4, 5)
        telemetry = Telemetry()
        jobs = [CompileJob(program=list(program)) for _ in range(6)]
        completed = execute_batch(jobs, cache=cache, telemetry=telemetry)
        keys = {outcome.key for outcome in completed}
        assert len(keys) == 1
        assert telemetry.counter("service.compiled_programs") == 1
        first = completed[0].result
        assert all(outcome.result is first for outcome in completed)

    def test_second_batch_hits_the_cache(self, cache, rng):
        program = random_pauli_terms(rng, 4, 5)
        execute_batch([CompileJob(program=program)], cache=cache)
        completed = execute_batch([CompileJob(program=program)], cache=cache)
        assert completed[0].cache_hit

    def test_use_cache_false_recompiles(self, cache, rng):
        program = random_pauli_terms(rng, 4, 5)
        execute_batch([CompileJob(program=program)], cache=cache)
        completed = execute_batch(
            [CompileJob(program=program, use_cache=False)], cache=cache
        )
        assert not completed[0].cache_hit
        assert completed[0].result is not None

    def test_mixed_configs_group_independently(self, cache, rng):
        program = random_pauli_terms(rng, 4, 5)
        jobs = [
            CompileJob(program=program, level=3),
            CompileJob(program=program, level=0),
        ]
        completed = execute_batch(jobs, cache=cache)
        assert completed[0].key != completed[1].key
        assert (
            completed[0].result.circuit.cx_count()
            <= completed[1].result.circuit.cx_count()
        )

    def test_invalid_program_fails_only_its_own_job(self, cache, rng):
        good = random_pauli_terms(rng, 4, 5)
        zero_qubit = [PauliTerm(PauliString([], []), 1.0)]
        jobs = [CompileJob(program=good), CompileJob(program=zero_qubit)]
        completed = execute_batch(jobs, cache=cache)
        assert completed[0].error is None and completed[0].result is not None
        assert isinstance(completed[1].error, InvalidProgramError)

    def test_unknown_pipeline_fails_the_group(self, cache, rng):
        jobs = [CompileJob(program=random_pauli_terms(rng, 4, 5), pipeline="nope")]
        completed = execute_batch(jobs, cache=cache)
        assert isinstance(completed[0].error, CompilerError)

    def test_works_without_a_cache(self, rng):
        program = random_pauli_terms(rng, 4, 5)
        completed = execute_batch([CompileJob(program=program)])
        assert completed[0].key is None
        assert completed[0].result.circuit == repro.compile(program, level=3).circuit

    def test_invalid_program_isolated_even_without_a_cache(self, rng):
        # cache-less servers must keep the per-job error isolation too: the
        # up-front validation runs per job, not only inside cache.key_for
        good = random_pauli_terms(rng, 4, 5)
        jobs = [CompileJob(program=good), CompileJob(program=[]), CompileJob(program=good)]
        completed = execute_batch(jobs)
        assert completed[0].error is None and completed[0].result is not None
        assert isinstance(completed[1].error, InvalidProgramError)
        assert completed[2].error is None and completed[2].result is not None

    def test_whole_batch_failure_retries_individually(self, rng):
        # a program defect the up-front checks don't see (mixed qubit counts
        # inside one program) fails compile_many as a whole; the fallback
        # compiles one-by-one so only the culprit's jobs error.  cache=None
        # keeps the defect past the key phase (key_for would catch it).
        good = random_pauli_terms(rng, 4, 5)
        mixed = random_pauli_terms(rng, 4, 2) + random_pauli_terms(rng, 5, 2)
        completed = execute_batch([CompileJob(program=good), CompileJob(program=mixed)])
        assert completed[0].error is None
        assert completed[0].result.circuit == repro.compile(good, level=3).circuit
        assert isinstance(completed[1].error, ReproError)

    def test_mixed_qubit_program_fails_at_the_key_phase_with_a_cache(self, rng, cache):
        good = random_pauli_terms(rng, 4, 5)
        mixed = random_pauli_terms(rng, 4, 2) + random_pauli_terms(rng, 5, 2)
        completed = execute_batch(
            [CompileJob(program=good), CompileJob(program=mixed)], cache=cache
        )
        assert completed[0].error is None and completed[0].result is not None
        assert isinstance(completed[1].error, ReproError)

    def test_shared_conjugation_cache_is_used(self, cache, rng):
        program = random_pauli_terms(rng, 4, 5)
        outcome = execute_batch([CompileJob(program=program)], cache=cache)[0]
        import numpy as np

        observable = PauliString(np.ones(4, dtype=bool), np.zeros(4, dtype=bool))
        outcome.result.absorb_observables([observable])
        assert cache.conjugation_cache.stats()["entries"] >= 1


class TestBatchingScheduler:
    def _run(self, coro):
        return asyncio.run(coro)

    def test_same_tick_submissions_coalesce_into_one_batch(self, cache, rng):
        programs = [random_pauli_terms(rng, 4, 5) for _ in range(5)]

        async def scenario():
            scheduler = BatchingScheduler(cache=cache, window_seconds=0.005)
            outcomes = await asyncio.gather(
                *(scheduler.submit(program) for program in programs)
            )
            return scheduler, outcomes

        scheduler, outcomes = self._run(scenario())
        assert scheduler.batches_flushed == 1
        reference = [repro.compile(p, level=3) for p in programs]
        for outcome, expected in zip(outcomes, reference):
            assert outcome.result.circuit == expected.circuit

    def test_full_batch_flushes_before_the_window(self, cache, rng):
        programs = [random_pauli_terms(rng, 4, 4) for _ in range(4)]

        async def scenario():
            scheduler = BatchingScheduler(
                cache=cache, window_seconds=30.0, max_batch=4
            )
            outcomes = await asyncio.wait_for(
                asyncio.gather(*(scheduler.submit(p) for p in programs)), timeout=20.0
            )
            return scheduler, outcomes

        scheduler, outcomes = self._run(scenario())
        # a 30s window would time the wait_for out; max_batch flushed it
        assert scheduler.batches_flushed == 1
        assert all(outcome.result is not None for outcome in outcomes)

    def test_submit_raises_per_job_errors(self, cache):
        zero_qubit = [PauliTerm(PauliString([], []), 1.0)]

        async def scenario():
            scheduler = BatchingScheduler(cache=cache, window_seconds=0.001)
            with pytest.raises(InvalidProgramError):
                await scheduler.submit(zero_qubit)

        self._run(scenario())

    def test_sequential_windows_are_separate_batches(self, cache, rng):
        program = random_pauli_terms(rng, 4, 5)

        async def scenario():
            scheduler = BatchingScheduler(cache=cache, window_seconds=0.001)
            first = await scheduler.submit(program)
            second = await scheduler.submit(program)
            return scheduler, first, second

        scheduler, first, second = self._run(scenario())
        assert scheduler.batches_flushed == 2
        assert not first.cache_hit
        assert second.cache_hit
