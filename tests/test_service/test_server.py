"""The asyncio HTTP front-end: endpoints, errors, concurrency, batching."""

import http.client
import json
import threading

import numpy as np
import pytest

import repro
from repro.exceptions import ServiceError
from repro.service.client import Client
from repro.service.serialize import program_to_wire
from repro.service.server import ServiceServer, run_server_in_thread

from tests.conftest import random_pauli_terms


@pytest.fixture(scope="module")
def server(tmp_path_factory):
    instance = ServiceServer(
        cache_dir=tmp_path_factory.mktemp("service-cache"),
        window_seconds=0.001,
    )
    with run_server_in_thread(instance):
        yield instance


@pytest.fixture
def client(server):
    with Client(port=server.port) as instance:
        yield instance


def _rng(seed=0):
    return np.random.default_rng(seed)


class TestEndpoints:
    def test_healthz(self, client):
        payload = client.healthz()
        assert payload["status"] == "ok"
        assert payload["caching"] is True

    def test_compile_miss_then_hit_identical(self, client):
        terms = random_pauli_terms(_rng(1), 4, 6)
        reference = repro.compile(terms, level=3)
        first = client.compile(terms)
        second = client.compile(terms)
        assert not first.cache_hit
        assert second.cache_hit
        assert first.result.circuit == reference.circuit
        assert second.result.circuit == reference.circuit
        assert second.result.extracted_clifford == reference.extracted_clifford
        assert first.key == second.key

    def test_metrics_reflect_traffic(self, client):
        terms = random_pauli_terms(_rng(2), 4, 5)
        client.compile(terms)
        payload = client.metrics()
        assert payload["telemetry"]["counters"]["service.http_requests"] >= 1
        assert payload["cache"]["disk_entries"] >= 1
        assert payload["scheduler"]["jobs_submitted"] >= 1

    def test_result_fetch_by_key(self, client):
        terms = random_pauli_terms(_rng(3), 4, 5)
        response = client.compile(terms)
        fetched = client.result(response.key)
        assert fetched is not None
        assert fetched.circuit == response.result.circuit

    def test_result_unknown_key_is_none(self, client):
        assert client.result("0" * 64) is None

    def test_include_result_false_returns_metrics_only(self, client):
        terms = random_pauli_terms(_rng(4), 4, 5)
        response = client.compile(terms, include_result=False)
        assert response.result is None
        assert response.metrics["cx_count"] >= 0
        # the artifact is still stored and fetchable
        assert client.result(response.key) is not None

    def test_compile_batch(self, client):
        programs = [random_pauli_terms(_rng(5 + i), 4, 5) for i in range(3)]
        responses = client.compile_batch(programs)
        assert len(responses) == 3
        for program, response in zip(programs, responses):
            assert response.result.circuit == repro.compile(program, level=3).circuit

    def test_compile_with_level_and_pipeline(self, client):
        terms = random_pauli_terms(_rng(8), 4, 5)
        level0 = client.compile(terms, level=0)
        named = client.compile(terms, pipeline="quclear")
        assert level0.key != named.key
        assert level0.result.circuit == repro.compile(terms, level=0).circuit

    def test_compile_for_target(self, client):
        terms = random_pauli_terms(_rng(9), 4, 5)
        routed = client.compile(terms, target="sycamore")
        assert routed.result.metadata.get("routed") is True


class TestErrors:
    def test_unknown_path_404(self, client):
        with pytest.raises(ServiceError) as excinfo:
            client._request("GET", "/nope")
        assert excinfo.value.status == 404

    def test_missing_program_400(self, client):
        with pytest.raises(ServiceError) as excinfo:
            client._request("POST", "/compile", {"level": 3})
        assert excinfo.value.status == 400

    def test_empty_program_400_with_clear_type(self, server, client):
        payload = program_to_wire(random_pauli_terms(_rng(10), 4, 5))
        payload["x_words"]["shape"] = [0, 1]
        payload["x_words"]["data"] = ""
        with pytest.raises(ServiceError) as excinfo:
            client._request("POST", "/compile", {"program": payload})
        assert excinfo.value.status == 400

    def test_zero_qubit_program_reports_invalid_program(self, client):
        # an empty-register program passes deserialization but must be
        # rejected by the shared entry-point validation, as InvalidProgramError
        from repro.paulis.pauli import PauliString
        from repro.paulis.term import PauliTerm

        payload = program_to_wire([PauliTerm(PauliString([], []), 1.0)])
        with pytest.raises(ServiceError) as excinfo:
            client._request("POST", "/compile", {"program": payload})
        assert excinfo.value.status == 400
        assert "InvalidProgramError" in str(excinfo.value)

    def test_bad_level_400(self, client):
        payload = {
            "program": program_to_wire(random_pauli_terms(_rng(11), 4, 5)),
            "level": "three",
        }
        with pytest.raises(ServiceError) as excinfo:
            client._request("POST", "/compile", payload)
        assert excinfo.value.status == 400

    def test_unknown_pipeline_400(self, client):
        payload = {
            "program": program_to_wire(random_pauli_terms(_rng(12), 4, 5)),
            "pipeline": "not-a-compiler",
        }
        with pytest.raises(ServiceError) as excinfo:
            client._request("POST", "/compile", payload)
        assert excinfo.value.status == 400

    def test_malformed_json_400(self, server):
        connection = http.client.HTTPConnection("127.0.0.1", server.port, timeout=30)
        try:
            connection.request(
                "POST",
                "/compile",
                body=b"{truncated",
                headers={"Content-Type": "application/json"},
            )
            response = connection.getresponse()
            body = json.loads(response.read())
            assert response.status == 400
            assert "JSON" in body["error"] or "json" in body["error"]
        finally:
            connection.close()

    def test_batch_reports_per_entry_errors(self, client):
        good = program_to_wire(random_pauli_terms(_rng(13), 4, 5))
        bad = {"format": "repro.program/v1", "kind": "mystery"}
        decoded = client._request(
            "POST", "/compile_batch", {"programs": [good, bad], "include_result": False}
        )
        entries = decoded["results"]
        assert "error" not in entries[0]
        assert "error" in entries[1]

    def test_malformed_content_length_gets_a_400(self, server):
        # a non-numeric Content-Length must produce an HTTP error response,
        # not a silently dropped connection
        import socket

        with socket.create_connection(("127.0.0.1", server.port), timeout=30) as sock:
            sock.sendall(
                b"POST /compile HTTP/1.1\r\n"
                b"Host: localhost\r\n"
                b"Content-Length: abc\r\n"
                b"\r\n"
            )
            response = sock.recv(65536).decode("latin-1")
        assert response.startswith("HTTP/1.1 400"), response[:80]

    def test_negative_content_length_gets_a_400(self, server):
        import socket

        with socket.create_connection(("127.0.0.1", server.port), timeout=30) as sock:
            sock.sendall(
                b"POST /compile HTTP/1.1\r\n"
                b"Host: localhost\r\n"
                b"Content-Length: -5\r\n"
                b"\r\n"
            )
            response = sock.recv(65536).decode("latin-1")
        assert response.startswith("HTTP/1.1 400"), response[:80]

    def test_server_survives_errors(self, client):
        # after every error above, a normal request must still work
        response = client.compile(random_pauli_terms(_rng(14), 4, 5))
        assert response.result is not None


class TestConcurrency:
    def test_32_concurrent_compiles_no_lost_or_corrupt_responses(self, server):
        # half identical (exercises within-batch dedup), half distinct
        identical = random_pauli_terms(_rng(20), 5, 6)
        distinct = [random_pauli_terms(_rng(30 + i), 5, 6) for i in range(16)]
        programs = [identical] * 16 + distinct
        references = {
            id(program): repro.compile(program, level=3) for program in programs
        }
        responses = [None] * len(programs)
        errors = []

        def worker(index, program):
            try:
                with Client(port=server.port) as worker_client:
                    responses[index] = worker_client.compile(program)
            except Exception as error:  # noqa: BLE001 — recorded for the assert
                errors.append((index, error))

        threads = [
            threading.Thread(target=worker, args=(index, program))
            for index, program in enumerate(programs)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=120)
        assert not errors, f"lost responses: {errors}"
        assert all(response is not None for response in responses)
        for program, response in zip(programs, responses):
            assert response.result.circuit == references[id(program)].circuit, (
                "corrupted response for a concurrent request"
            )

    def test_batch_endpoint_coalesces_into_few_batches(self, server):
        programs = [random_pauli_terms(_rng(60 + i), 4, 5) for i in range(6)]
        with Client(port=server.port) as batch_client:
            before = batch_client.metrics()["scheduler"]["batches_flushed"]
            batch_client.compile_batch(programs, use_cache=False)
            after = batch_client.metrics()["scheduler"]["batches_flushed"]
        # 6 programs submitted in one loop tick: one window, not six
        assert after - before == 1


class TestParametricEndpoints:
    @staticmethod
    def _program(seed=60, num_terms=8):
        from repro.parametric import ParametricProgram

        terms = random_pauli_terms(_rng(seed), 4, num_terms)
        return ParametricProgram.from_terms(
            terms, [index % 2 for index in range(num_terms)]
        )

    def test_compile_template_miss_then_hit(self, client):
        program = self._program(seed=61)
        first = client.compile_template(program, level=3)
        second = client.compile_template(program, level=3)
        assert not first.cache_hit
        assert second.cache_hit
        assert first.template_key == second.template_key
        assert first.num_terms == 8
        assert first.num_params == 2
        assert first.level == 3
        assert first.skeleton_gates > 0

    def test_bind_by_key_matches_local_compile(self, client):
        program = self._program(seed=62)
        handle = client.compile_template(program, level=3)
        params = [0.37, -1.42]
        response = client.bind(params, template_key=handle.template_key)
        assert response.cache_hit
        assert response.key == handle.template_key
        reference = repro.compile(program.to_sum(params), level=3)
        assert response.result.circuit == reference.circuit
        assert response.result.extracted_clifford == reference.extracted_clifford
        assert response.compiler == reference.name

    def test_bind_inline_template(self, client):
        from repro.parametric import compile_template

        program = self._program(seed=63)
        template = compile_template(program, level=2)
        params = [1.05, 0.55]
        response = client.bind(params, template=template)
        assert not response.cache_hit
        assert response.key is None
        reference = repro.compile(program.to_sum(params), level=2)
        assert response.result.circuit == reference.circuit

    def test_bind_without_result_payload(self, client):
        program = self._program(seed=64)
        handle = client.compile_template(program, level=3)
        response = client.bind(
            [0.9, 0.1], template_key=handle.template_key, include_result=False
        )
        assert response.result is None
        assert response.metrics is not None

    def test_include_template_round_trips(self, client):
        program = self._program(seed=65)
        handle = client.compile_template(program, level=3, include_template=True)
        assert handle.template is not None
        params = [0.21, 0.84]
        local = handle.template.bind(params)
        remote = client.bind(params, template_key=handle.template_key)
        assert local.circuit == remote.result.circuit

    def test_bind_unknown_key_is_404(self, client):
        with pytest.raises(ServiceError) as excinfo:
            client.bind([0.1, 0.2], template_key="ab" * 32)
        assert excinfo.value.status == 404

    def test_bind_nan_params_rejected(self, client):
        program = self._program(seed=66)
        handle = client.compile_template(program, level=3)
        with pytest.raises(ServiceError) as excinfo:
            client.bind([float("nan"), 0.2], template_key=handle.template_key)
        assert excinfo.value.status == 400
        assert "InvalidProgramError" in str(excinfo.value)

    def test_bind_wrong_arity_rejected(self, client):
        program = self._program(seed=67)
        handle = client.compile_template(program, level=3)
        with pytest.raises(ServiceError) as excinfo:
            client.bind([0.1, 0.2, 0.3], template_key=handle.template_key)
        assert excinfo.value.status == 400

    def test_template_custom_pipeline_rejected(self, client):
        from repro.service.serialize import parametric_program_to_wire

        program = self._program(seed=68)
        payload = {
            "program": parametric_program_to_wire(program),
            "pipeline": "quclear",
        }
        with pytest.raises(ServiceError) as excinfo:
            client._request("POST", "/compile_template", payload)
        assert excinfo.value.status == 400
        assert "preset levels only" in str(excinfo.value)

    def test_delete_result_lifecycle(self, client):
        terms = random_pauli_terms(_rng(69), 4, 6)
        response = client.compile(terms, include_result=False)
        assert client.result(response.key) is not None
        assert client.delete_result(response.key) is True
        assert client.result(response.key) is None
        assert client.delete_result(response.key) is False

    def test_metrics_count_parametric_traffic(self, client):
        program = self._program(seed=70)
        handle = client.compile_template(program, level=3)
        client.bind([0.5, 0.6], template_key=handle.template_key)
        counters = client.metrics()["telemetry"]["counters"]
        assert counters["service.template_requests"] >= 1
        assert counters["service.bind_requests"] >= 1
        assert counters.get("service.results_deleted", 0) >= 1
        latency = client.metrics()["telemetry"]["latency"]
        assert latency["service.bind_seconds"]["count"] >= 1
        assert latency["service.template_compile_seconds"]["count"] >= 1
