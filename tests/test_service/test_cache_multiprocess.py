"""N processes on one cache dir: the shared-directory contract, end to end.

Drives ``scripts/cache_stress.py`` — the same harness an operator can run at
larger scale — at a size small enough for CI.  The script exits non-zero if
any process crashes, any protected artifact is lost or corrupted, the index
fails to reconcile to a fixed point, or an atomic-write temp file leaks.
"""

import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[2]
STRESS = REPO_ROOT / "scripts" / "cache_stress.py"


def _run(*extra):
    return subprocess.run(
        [sys.executable, str(STRESS), *extra],
        capture_output=True,
        text=True,
        timeout=600,
    )


class TestMultiprocessStress:
    def test_three_processes_share_one_dir(self, tmp_path):
        result = _run(
            "--processes", "3",
            "--ops", "50",
            "--cache-dir", str(tmp_path / "shared"),
        )
        assert result.returncode == 0, result.stdout + result.stderr
        assert "OK:" in result.stdout

    def test_deletes_races_and_sweeps_corrupt_nothing(self, tmp_path):
        # a different seed shuffles which keys contend on delete/sweep
        result = _run(
            "--processes", "2",
            "--ops", "80",
            "--seed", "99",
            "--cache-dir", str(tmp_path / "shared"),
        )
        assert result.returncode == 0, result.stdout + result.stderr
