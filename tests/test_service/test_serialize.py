"""Round-trip exactness of the wire format (programs, circuits, results)."""

import json

import numpy as np
import pytest

import repro
from repro.exceptions import WireFormatError
from repro.paulis.sum import SparsePauliSum
from repro.paulis.term import PauliTerm
from repro.service.serialize import (
    circuit_from_wire,
    circuit_to_wire,
    decode_array,
    encode_array,
    pauli_from_wire,
    pauli_to_wire,
    program_from_wire,
    program_to_wire,
    result_from_wire,
    result_to_wire,
    sum_from_wire,
    sum_to_wire,
    tableau_from_wire,
    tableau_to_wire,
)

from tests.conftest import (
    random_clifford_circuit,
    random_pauli,
    random_pauli_terms,
)


def _json_roundtrip(payload: dict) -> dict:
    """Force the payload through actual JSON text, as the service does."""
    return json.loads(json.dumps(payload))


class TestArrayEncoding:
    def test_uint64_roundtrip(self, rng):
        words = rng.integers(0, 2**63, size=(7, 3), dtype=np.uint64)
        restored = decode_array(_json_roundtrip(encode_array(words, "<u8")), "<u8")
        assert np.array_equal(words, restored)

    def test_float64_bit_exact(self, rng):
        values = rng.standard_normal(100)
        restored = decode_array(_json_roundtrip(encode_array(values, "<f8")), "<f8")
        assert values.tobytes() == restored.tobytes()

    def test_wrong_byte_count_rejected(self):
        payload = encode_array(np.zeros(4, dtype=np.int64), "<i8")
        payload["shape"] = [5]
        with pytest.raises(WireFormatError):
            decode_array(payload, "<i8")

    def test_invalid_base64_rejected(self):
        payload = {"shape": [1], "data": "!!not-base64!!"}
        with pytest.raises(WireFormatError):
            decode_array(payload, "<i8")


class TestPauliWire:
    @pytest.mark.parametrize("num_qubits", [1, 5, 64, 70, 130])
    def test_roundtrip_preserves_words_and_phase(self, rng, num_qubits):
        for _ in range(5):
            pauli = random_pauli(rng, num_qubits)
            restored = pauli_from_wire(_json_roundtrip(pauli_to_wire(pauli)))
            assert restored.num_qubits == pauli.num_qubits
            assert np.array_equal(restored.x_words, pauli.x_words)
            assert np.array_equal(restored.z_words, pauli.z_words)
            assert restored.phase == pauli.phase

    def test_format_tag_checked(self, rng):
        payload = pauli_to_wire(random_pauli(rng, 4))
        payload["format"] = "repro.program/v1"
        with pytest.raises(WireFormatError):
            pauli_from_wire(payload)


class TestProgramWire:
    @pytest.mark.parametrize("num_qubits", [3, 64, 97])
    def test_term_list_roundtrip_bit_exact(self, rng, num_qubits):
        terms = random_pauli_terms(rng, num_qubits, 40)
        restored = program_from_wire(_json_roundtrip(program_to_wire(terms)))
        assert isinstance(restored, list)
        assert len(restored) == len(terms)
        for original, back in zip(terms, restored):
            assert np.array_equal(back.pauli.x_words, original.pauli.x_words)
            assert np.array_equal(back.pauli.z_words, original.pauli.z_words)
            assert back.pauli.phase == original.pauli.phase
            # float64 equality, not approx: the coefficient bytes travel raw
            assert back.coefficient == original.coefficient

    def test_sum_roundtrip_reproduces_packed_store(self, rng):
        terms = random_pauli_terms(rng, 70, 60)
        observable = SparsePauliSum(terms)
        restored = sum_from_wire(_json_roundtrip(sum_to_wire(observable)))
        assert isinstance(restored, SparsePauliSum)
        original_table = observable.packed_table
        restored_table = restored.packed_table
        assert np.array_equal(restored_table.x_words, original_table.x_words)
        assert np.array_equal(restored_table.z_words, original_table.z_words)
        assert np.array_equal(restored_table.phases, original_table.phases)
        assert (
            restored.coefficient_vector().tobytes()
            == observable.coefficient_vector().tobytes()
        )

    def test_kind_is_preserved(self, rng):
        terms = random_pauli_terms(rng, 4, 5)
        assert isinstance(program_from_wire(program_to_wire(terms)), list)
        assert isinstance(
            program_from_wire(program_to_wire(SparsePauliSum(terms))), SparsePauliSum
        )

    def test_empty_program_rejected(self):
        with pytest.raises(WireFormatError):
            program_to_wire([])

    def test_coefficient_count_mismatch_rejected(self, rng):
        payload = program_to_wire(random_pauli_terms(rng, 4, 5))
        payload["coefficients"] = encode_array(np.zeros(3), "<f8")
        with pytest.raises(WireFormatError):
            program_from_wire(payload)

    def test_unknown_kind_rejected(self, rng):
        payload = program_to_wire(random_pauli_terms(rng, 4, 5))
        payload["kind"] = "mystery"
        with pytest.raises(WireFormatError):
            program_from_wire(payload)


class TestCircuitWire:
    def test_clifford_circuit_roundtrip(self, rng):
        circuit = random_clifford_circuit(rng, 6, 60)
        assert circuit_from_wire(_json_roundtrip(circuit_to_wire(circuit))) == circuit

    def test_rotation_angles_bit_exact(self, rng):
        circuit = repro.QuantumCircuit(3)
        for _ in range(25):
            circuit.rz(float(rng.standard_normal()), int(rng.integers(3)))
        restored = circuit_from_wire(_json_roundtrip(circuit_to_wire(circuit)))
        assert [g.params for g in restored] == [g.params for g in circuit]

    def test_qubit_count_mismatch_rejected(self, rng):
        payload = circuit_to_wire(random_clifford_circuit(rng, 4, 10))
        payload["num_qubits"] = 9
        with pytest.raises(WireFormatError):
            circuit_from_wire(payload)


class TestTableauWire:
    @pytest.mark.parametrize("num_qubits", [2, 8, 70])
    def test_roundtrip_is_content_identical(self, rng, num_qubits):
        circuit = random_clifford_circuit(rng, num_qubits, 40)
        tableau = repro.CliffordTableau.from_circuit(circuit)
        restored = tableau_from_wire(_json_roundtrip(tableau_to_wire(tableau)))
        assert restored.content_key() == tableau.content_key()


class TestResultWire:
    @pytest.mark.parametrize("level", [0, 2, 3])
    def test_roundtrip_across_levels(self, rng, level):
        terms = random_pauli_terms(rng, 5, 12)
        result = repro.compile(terms, level=level)
        restored = result_from_wire(_json_roundtrip(result_to_wire(result)))
        assert restored.circuit == result.circuit
        assert restored.extracted_clifford == result.extracted_clifford
        assert restored.name == result.name
        assert restored.metadata == result.metadata
        if result.extraction is None:
            assert restored.extraction is None
        else:
            assert (
                restored.extraction.conjugation.content_key()
                == result.extraction.conjugation.content_key()
            )
            assert restored.extraction.rotation_count == result.extraction.rotation_count
            assert (
                restored.extraction.optimized_circuit
                == result.extraction.optimized_circuit
            )
            assert (
                restored.extraction.extracted_clifford
                == result.extraction.extracted_clifford
            )

    def test_pass_timings_bit_exact(self, rng):
        result = repro.compile(random_pauli_terms(rng, 4, 8), level=3)
        restored = result_from_wire(_json_roundtrip(result_to_wire(result)))
        assert restored.pass_timings == result.pass_timings
        for name, seconds in result.pass_timings.items():
            # equality of repr proves the float survived JSON bit-for-bit
            assert repr(restored.pass_timings[name]) == repr(seconds)

    def test_wide_register_roundtrip(self, rng):
        # >64 qubits: the packed store spans two words per row
        terms = random_pauli_terms(rng, 70, 10)
        result = repro.compile(terms, level=3)
        restored = result_from_wire(_json_roundtrip(result_to_wire(result)))
        assert restored.circuit == result.circuit
        assert (
            restored.extraction.conjugation.content_key()
            == result.extraction.conjugation.content_key()
        )

    def test_routed_result_roundtrip(self, rng):
        terms = random_pauli_terms(rng, 6, 8)
        result = repro.compile(terms, target="sycamore", level=3)
        restored = result_from_wire(_json_roundtrip(result_to_wire(result)))
        assert restored.circuit == result.circuit
        assert restored.metadata.get("routed") is True

    def test_to_dict_from_dict_methods(self, rng):
        result = repro.compile(random_pauli_terms(rng, 4, 6), level=3)
        restored = repro.CompilationResult.from_dict(result.to_dict())
        assert restored.circuit == result.circuit

    def test_sum_program_result_roundtrip(self, rng):
        observable = SparsePauliSum(random_pauli_terms(rng, 5, 10))
        result = repro.compile(observable, level=3)
        restored = result_from_wire(_json_roundtrip(result_to_wire(result)))
        assert restored.circuit == result.circuit

    def test_absorption_still_works_after_roundtrip(self, rng):
        # the deserialized result rebuilds its lazy absorbers from the
        # restored tableau (no conjugation cache travels on the wire)
        terms = random_pauli_terms(rng, 4, 8)
        result = repro.compile(terms, level=3)
        restored = result_from_wire(result_to_wire(result))
        observable = random_pauli(rng, 4)
        original = result.absorb_observables([observable])
        recovered = restored.absorb_observables([observable])
        assert [(a.updated, a.sign) for a in recovered] == [
            (a.updated, a.sign) for a in original
        ]

    def test_extraction_terms_preserved(self, rng):
        terms = random_pauli_terms(rng, 4, 7)
        result = repro.compile(terms, level=3)
        restored = result_from_wire(result_to_wire(result))
        assert len(restored.extraction.terms) == len(result.extraction.terms)
        for original, back in zip(result.extraction.terms, restored.extraction.terms):
            assert back.pauli == original.pauli
            assert back.coefficient == original.coefficient

    def test_rejects_foreign_format(self):
        with pytest.raises(WireFormatError):
            result_from_wire({"format": "repro.result/v999"})


def test_public_reexports():
    from repro.service import WIRE_VERSION, program_to_wire as exported

    assert WIRE_VERSION == 1
    assert exported is program_to_wire
