"""Tests for the direct Pauli-rotation and Trotter-circuit synthesis."""

import numpy as np
import pytest

from repro.circuits.statevector import circuit_unitary
from repro.exceptions import SynthesisError
from repro.paulis.pauli import PauliString
from repro.paulis.sum import SparsePauliSum
from repro.paulis.term import PauliTerm
from repro.synthesis.pauli_rotation import (
    basis_change_gates,
    cnot_balanced_tree_gates,
    cnot_chain_gates,
    synthesize_pauli_rotation,
)
from repro.synthesis.trotter import (
    count_native_gates,
    rotation_terms_from_hamiltonian,
    synthesize_trotter_circuit,
)

from tests.conftest import pauli_rotation_matrix, random_pauli_terms


def _matrices_close_up_to_phase(first: np.ndarray, second: np.ndarray) -> bool:
    product = second.conj().T @ first
    phase = product[0, 0]
    if abs(abs(phase) - 1.0) > 1e-8:
        return False
    return np.allclose(product, phase * np.eye(product.shape[0]), atol=1e-8)


class TestBuildingBlocks:
    def test_basis_change_identity_free(self):
        gates = basis_change_gates(PauliString.from_label("ZIZ"))
        assert gates == []

    def test_basis_change_x_and_y(self):
        gates = basis_change_gates(PauliString.from_label("XY"))
        names = [(g.name, g.qubits[0]) for g in gates]
        assert ("h", 1) in names
        assert ("sdg", 0) in names and ("h", 0) in names

    def test_chain_structure(self):
        gates, root = cnot_chain_gates([0, 2, 3])
        assert root == 3
        assert [g.qubits for g in gates] == [(0, 2), (2, 3)]

    def test_chain_empty_support(self):
        with pytest.raises(SynthesisError):
            cnot_chain_gates([])

    def test_balanced_tree_gate_count(self):
        gates, root = cnot_balanced_tree_gates(list(range(8)))
        assert len(gates) == 7
        assert root in range(8)

    def test_balanced_tree_shallower_than_chain(self):
        from repro.circuits.circuit import QuantumCircuit

        support = list(range(16))
        chain_gates, _ = cnot_chain_gates(support)
        tree_gates, _ = cnot_balanced_tree_gates(support)
        chain = QuantumCircuit(16, chain_gates)
        tree = QuantumCircuit(16, tree_gates)
        assert tree.entangling_depth() < chain.entangling_depth()


class TestPauliRotation:
    @pytest.mark.parametrize("label", ["Z", "X", "Y", "ZZ", "XX", "XY", "ZYX", "IXZI"])
    def test_rotation_matches_exact_matrix(self, label):
        term = PauliTerm.from_label(label, 0.731)
        circuit = synthesize_pauli_rotation(term)
        assert _matrices_close_up_to_phase(circuit_unitary(circuit), pauli_rotation_matrix(term))

    def test_negative_sign_flips_angle(self):
        positive = PauliTerm(PauliString.from_label("ZZ"), 0.5)
        negative = PauliTerm(PauliString.from_label("-ZZ"), -0.5)
        assert _matrices_close_up_to_phase(
            circuit_unitary(synthesize_pauli_rotation(positive)),
            circuit_unitary(synthesize_pauli_rotation(negative)),
        )

    def test_identity_term_gives_empty_circuit(self):
        term = PauliTerm(PauliString.identity(3), 0.4)
        assert len(synthesize_pauli_rotation(term)) == 0

    def test_balanced_tree_variant_equivalent(self, rng):
        for term in random_pauli_terms(rng, 4, 5):
            chain = synthesize_pauli_rotation(term, tree="chain")
            balanced = synthesize_pauli_rotation(term, tree="balanced")
            assert _matrices_close_up_to_phase(
                circuit_unitary(chain), circuit_unitary(balanced)
            )

    def test_unknown_tree_style(self):
        with pytest.raises(SynthesisError):
            synthesize_pauli_rotation(PauliTerm.from_label("Z", 0.1), tree="bogus")

    def test_cnot_count_is_two_weight_minus_two(self):
        term = PauliTerm.from_label("XYZX", 0.3)
        circuit = synthesize_pauli_rotation(term)
        assert circuit.cx_count() == 2 * (term.pauli.weight - 1)

    def test_non_hermitian_rejected(self):
        with pytest.raises(SynthesisError):
            synthesize_pauli_rotation(PauliTerm(PauliString.from_label("+iX"), 0.3))


class TestTrotter:
    def test_trotter_matches_product_of_rotations(self, rng):
        terms = random_pauli_terms(rng, 3, 4)
        circuit = synthesize_trotter_circuit(terms)
        expected = np.eye(8, dtype=complex)
        for term in terms:
            expected = pauli_rotation_matrix(term) @ expected
        assert _matrices_close_up_to_phase(circuit_unitary(circuit), expected)

    def test_empty_terms_rejected(self):
        with pytest.raises(SynthesisError):
            synthesize_trotter_circuit([])

    def test_mismatched_sizes_rejected(self):
        terms = [PauliTerm.from_label("X", 0.1), PauliTerm.from_label("XX", 0.1)]
        with pytest.raises(SynthesisError):
            synthesize_trotter_circuit(terms)

    def test_rotation_terms_from_hamiltonian(self):
        hamiltonian = SparsePauliSum.from_labels(["ZZ", "XI"], [0.5, -0.25])
        rotations = rotation_terms_from_hamiltonian(hamiltonian, time=2.0)
        assert len(rotations) == 2
        assert rotations[0].coefficient == pytest.approx(2.0)
        assert rotations[1].coefficient == pytest.approx(-1.0)

    def test_rotation_terms_repetitions(self):
        hamiltonian = SparsePauliSum.from_labels(["Z"], [1.0])
        rotations = rotation_terms_from_hamiltonian(hamiltonian, time=1.0, repetitions=4)
        assert len(rotations) == 4
        assert rotations[0].coefficient == pytest.approx(0.5)

    def test_count_native_gates_keys(self):
        terms = [PauliTerm.from_label("ZZ", 0.3)]
        counts = count_native_gates(terms)
        assert counts["cx"] == 2
        assert set(counts) == {"cx", "single_qubit", "total", "entangling_depth"}
