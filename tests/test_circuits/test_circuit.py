"""Unit tests for the Gate and QuantumCircuit substrate."""

import numpy as np
import pytest

from repro.circuits.circuit import QuantumCircuit
from repro.circuits.gate import Gate
from repro.circuits.statevector import Statevector, circuit_unitary, circuits_equivalent
from repro.exceptions import CircuitError

from tests.conftest import random_clifford_circuit


class TestGate:
    def test_invalid_name(self):
        with pytest.raises(CircuitError):
            Gate("foo", (0,))

    def test_wrong_arity(self):
        with pytest.raises(CircuitError):
            Gate("cx", (0,))
        with pytest.raises(CircuitError):
            Gate("h", (0, 1))

    def test_repeated_qubits(self):
        with pytest.raises(CircuitError):
            Gate("cx", (1, 1))

    def test_rotation_needs_angle(self):
        with pytest.raises(CircuitError):
            Gate("rz", (0,))

    def test_fixed_gate_rejects_params(self):
        with pytest.raises(CircuitError):
            Gate("h", (0,), (0.3,))

    def test_inverse_of_clifford(self):
        assert Gate("s", (0,)).inverse() == Gate("sdg", (0,))
        assert Gate("cx", (0, 1)).inverse() == Gate("cx", (0, 1))

    def test_inverse_of_rotation(self):
        assert Gate("rz", (0,), (0.5,)).inverse() == Gate("rz", (0,), (-0.5,))

    def test_matrices_are_unitary(self):
        for name in ["h", "s", "sdg", "x", "y", "z", "sx", "sxdg"]:
            matrix = Gate(name, (0,)).matrix()
            assert np.allclose(matrix @ matrix.conj().T, np.eye(2))
        for name in ["cx", "cz", "swap"]:
            matrix = Gate(name, (0, 1)).matrix()
            assert np.allclose(matrix @ matrix.conj().T, np.eye(4))

    def test_remapped(self):
        gate = Gate("cx", (0, 1)).remapped({0: 3, 1: 2})
        assert gate.qubits == (3, 2)

    def test_is_diagonal(self):
        assert Gate("rz", (0,), (0.1,)).is_diagonal
        assert not Gate("h", (0,)).is_diagonal


class TestQuantumCircuit:
    def test_append_out_of_range(self):
        circuit = QuantumCircuit(2)
        with pytest.raises(CircuitError):
            circuit.h(5)

    def test_builder_helpers(self):
        circuit = QuantumCircuit(3)
        circuit.h(0).cx(0, 1).rz(0.3, 1).cx(0, 1).h(0)
        assert len(circuit) == 5
        assert circuit.count_ops()["cx"] == 2

    def test_cx_count_counts_swap_as_three(self):
        circuit = QuantumCircuit(2)
        circuit.cx(0, 1).swap(0, 1)
        assert circuit.cx_count() == 4

    def test_single_qubit_count_ignores_identity(self):
        circuit = QuantumCircuit(1)
        circuit.i(0).h(0)
        assert circuit.single_qubit_count() == 1

    def test_depth(self):
        circuit = QuantumCircuit(3)
        circuit.h(0).h(1).cx(0, 1).cx(1, 2)
        assert circuit.depth() == 3
        assert circuit.entangling_depth() == 2

    def test_entangling_depth_parallel_gates(self):
        circuit = QuantumCircuit(4)
        circuit.cx(0, 1).cx(2, 3)
        assert circuit.entangling_depth() == 1

    def test_compose_sizes_must_match(self):
        with pytest.raises(CircuitError):
            QuantumCircuit(2).compose(QuantumCircuit(3))

    def test_inverse_roundtrip_is_identity(self, rng):
        circuit = random_clifford_circuit(rng, 3, 15)
        roundtrip = circuit.compose(circuit.inverse())
        identity = QuantumCircuit(3)
        assert circuits_equivalent(roundtrip, identity)

    def test_remapped(self):
        circuit = QuantumCircuit(2)
        circuit.cx(0, 1)
        mapped = circuit.remapped({0: 2, 1: 0}, num_qubits=3)
        assert mapped.gates[0].qubits == (2, 0)

    def test_metrics_keys(self):
        metrics = QuantumCircuit(2).metrics()
        assert set(metrics) == {
            "num_qubits",
            "total_gates",
            "cx_count",
            "single_qubit_count",
            "depth",
            "entangling_depth",
        }

    def test_used_qubits(self):
        circuit = QuantumCircuit(5)
        circuit.h(1).cx(3, 4)
        assert circuit.used_qubits() == [1, 3, 4]

    def test_num_parameters(self):
        circuit = QuantumCircuit(1)
        circuit.rz(0.1, 0).rx(0.2, 0).h(0)
        assert circuit.num_parameters() == 2


class TestStatevector:
    def test_initial_state(self):
        state = Statevector(2)
        assert np.allclose(state.data, [1, 0, 0, 0])

    def test_x_gate(self):
        circuit = QuantumCircuit(2)
        circuit.x(0)
        state = Statevector.from_circuit(circuit)
        assert np.allclose(state.data, [0, 1, 0, 0])

    def test_cx_control_is_first_qubit(self):
        circuit = QuantumCircuit(2)
        circuit.x(0).cx(0, 1)
        state = Statevector.from_circuit(circuit)
        # Control qubit 0 set, so target qubit 1 flips -> |11> = index 3.
        assert np.allclose(state.data, [0, 0, 0, 1])

    def test_bell_state(self):
        circuit = QuantumCircuit(2)
        circuit.h(0).cx(0, 1)
        state = Statevector.from_circuit(circuit)
        assert np.allclose(state.data, [1 / np.sqrt(2), 0, 0, 1 / np.sqrt(2)])

    def test_ghz_probabilities(self):
        circuit = QuantumCircuit(3)
        circuit.h(0).cx(0, 1).cx(1, 2)
        probabilities = Statevector.from_circuit(circuit).probability_dict()
        assert set(probabilities) == {"000", "111"}
        assert probabilities["000"] == pytest.approx(0.5)

    def test_expectation_value_z(self):
        circuit = QuantumCircuit(1)
        circuit.x(0)
        state = Statevector.from_circuit(circuit)
        from repro.paulis.pauli import PauliString

        assert state.expectation_value(PauliString.from_label("Z")) == pytest.approx(-1.0)

    def test_expectation_value_sum(self):
        from repro.paulis.sum import SparsePauliSum

        circuit = QuantumCircuit(1)
        circuit.h(0)
        state = Statevector.from_circuit(circuit)
        observable = SparsePauliSum.from_labels(["X", "Z"], [2.0, 3.0])
        assert state.expectation_value(observable) == pytest.approx(2.0)

    def test_sample_counts_total(self):
        circuit = QuantumCircuit(2)
        circuit.h(0)
        counts = Statevector.from_circuit(circuit).sample_counts(200, seed=7)
        assert sum(counts.values()) == 200
        assert set(counts) <= {"00", "01"}

    def test_circuit_unitary_of_x(self):
        circuit = QuantumCircuit(1)
        circuit.x(0)
        assert np.allclose(circuit_unitary(circuit), np.array([[0, 1], [1, 0]]))

    def test_circuits_equivalent_up_to_phase(self):
        first = QuantumCircuit(1)
        first.z(0)
        second = QuantumCircuit(1)
        second.s(0).s(0)
        assert circuits_equivalent(first, second)

    def test_circuits_not_equivalent(self):
        first = QuantumCircuit(1)
        first.x(0)
        second = QuantumCircuit(1)
        second.z(0)
        assert not circuits_equivalent(first, second)

    def test_gate_matrix_agreement_random(self, rng):
        # Statevector application must agree with the dense unitary product.
        circuit = random_clifford_circuit(rng, 3, 12)
        state = Statevector.from_circuit(circuit)
        unitary = circuit_unitary(circuit)
        initial = np.zeros(8, dtype=complex)
        initial[0] = 1
        assert np.allclose(state.data, unitary @ initial)

    def test_equiv_global_phase(self):
        circuit = QuantumCircuit(1)
        circuit.z(0).x(0).z(0).x(0)
        state = Statevector.from_circuit(circuit)
        assert state.equiv(Statevector(1))
