"""OpenQASM 2.0 export / import tests."""

import math

import pytest

from repro.circuits.circuit import QuantumCircuit
from repro.circuits.qasm import from_qasm, to_qasm
from repro.circuits.statevector import circuits_equivalent
from repro.exceptions import CircuitError

from tests.conftest import random_clifford_circuit, random_pauli_terms


class TestQasmExport:
    def test_header_and_register(self):
        circuit = QuantumCircuit(3)
        circuit.h(0)
        text = to_qasm(circuit)
        assert "OPENQASM 2.0;" in text
        assert "qreg q[3];" in text
        assert "h q[0];" in text

    def test_parameterised_gate(self):
        circuit = QuantumCircuit(1)
        circuit.rz(0.25, 0)
        assert "rz(0.25) q[0];" in to_qasm(circuit)

    def test_two_qubit_gate_order(self):
        circuit = QuantumCircuit(2)
        circuit.cx(1, 0)
        assert "cx q[1], q[0];" in to_qasm(circuit)


class TestQasmRoundTrip:
    def test_clifford_roundtrip(self, rng):
        for _ in range(5):
            circuit = random_clifford_circuit(rng, 3, 15)
            parsed = from_qasm(to_qasm(circuit))
            assert parsed == circuit

    def test_trotter_roundtrip_equivalence(self, rng):
        from repro.synthesis.trotter import synthesize_trotter_circuit

        terms = random_pauli_terms(rng, 3, 4)
        circuit = synthesize_trotter_circuit(terms)
        parsed = from_qasm(to_qasm(circuit))
        assert circuits_equivalent(circuit, parsed)

    def test_pi_expression(self):
        text = "\n".join(
            ["OPENQASM 2.0;", 'include "qelib1.inc";', "qreg q[1];", "rz(pi/2) q[0];"]
        )
        parsed = from_qasm(text)
        assert parsed.gates[0].params[0] == pytest.approx(math.pi / 2)

    def test_comments_and_measure_ignored(self):
        text = "\n".join(
            [
                "OPENQASM 2.0;",
                "qreg q[2];",
                "creg c[2];",
                "h q[0]; // comment",
                "measure q[0] -> c[0];",
            ]
        )
        parsed = from_qasm(text)
        assert len(parsed) == 1

    def test_missing_register(self):
        with pytest.raises(CircuitError):
            from_qasm("OPENQASM 2.0;\nh q[0];")

    def test_unknown_gate(self):
        with pytest.raises(CircuitError):
            from_qasm("OPENQASM 2.0;\nqreg q[1];\nfoo q[0];")

    def test_malicious_parameter_rejected(self):
        with pytest.raises(CircuitError):
            from_qasm("OPENQASM 2.0;\nqreg q[1];\nrz(__import__) q[0];")
