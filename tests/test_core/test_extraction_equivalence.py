"""Bit-for-bit equivalence: table-native extractor vs. the legacy loop.

The table-native :class:`~repro.core.extraction.CliffordExtractor` must
reproduce the legacy per-term implementation exactly — identical optimized
circuit, identical extracted Clifford tail, identical conjugation tableau
(bit patterns *and* phases) — on every input and under every feature-flag
combination, because the legacy loop is the repository's phase-convention
ground truth (see ``repro/core/extraction_legacy.py``).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.extraction import CliffordExtractor, _conjugate_through_gates
from repro.core.extraction_legacy import LegacyCliffordExtractor
from repro.core.tree_synthesis import chain_tree_cost, synthesize_tree
from repro.paulis.pauli import PauliString
from repro.paulis.sum import SparsePauliSum
from repro.paulis.term import PauliTerm

from tests.conftest import random_pauli_terms

FLAG_COMBOS = [
    {},
    {"reorder_within_blocks": False},
    {"recursive_tree": False},
    {"cross_block_lookahead": False},
    {"max_lookahead": 1},
    {"max_lookahead": 3},
    {"reorder_within_blocks": False, "recursive_tree": False},
]


def random_sparse_terms(
    rng: np.random.Generator, num_qubits: int, num_terms: int, density: float = 0.2
) -> list[PauliTerm]:
    """Random terms with sparse supports — what >64-qubit programs look like."""
    terms = []
    for _ in range(num_terms):
        x = rng.random(num_qubits) < density
        z = rng.random(num_qubits) < density
        if not (x.any() or z.any()):
            x[int(rng.integers(num_qubits))] = True
        phase = int(np.count_nonzero(x & z)) + 2 * int(rng.integers(2))
        terms.append(PauliTerm(PauliString(x, z, phase), float(rng.normal())))
    return terms


def assert_bit_identical(terms, **flags) -> None:
    packed = CliffordExtractor(**flags).extract(terms)
    legacy = LegacyCliffordExtractor(**flags).extract(
        list(terms) if isinstance(terms, SparsePauliSum) else terms
    )
    assert packed.optimized_circuit == legacy.optimized_circuit
    assert packed.extracted_clifford == legacy.extracted_clifford
    # content_key covers the symplectic bits AND the row phases of the tableau
    assert packed.conjugation.content_key() == legacy.conjugation.content_key()
    assert packed.rotation_count == legacy.rotation_count
    assert packed.metadata["num_blocks"] == legacy.metadata["num_blocks"]


class TestRandomizedEquivalence:
    def test_small_registers_all_flags(self, rng):
        for _ in range(10):
            num_qubits = int(rng.integers(2, 6))
            terms = random_pauli_terms(rng, num_qubits, int(rng.integers(2, 10)))
            for flags in FLAG_COMBOS:
                assert_bit_identical(terms, **flags)

    def test_mixed_block_sizes(self, rng):
        """Programs engineered to split into blocks of very different sizes."""
        terms = []
        # a large all-Z commuting block...
        for _ in range(12):
            terms.extend(random_pauli_terms(rng, 5, 1))
            z = np.zeros(5, dtype=bool)
            z[rng.integers(0, 5)] = True
            terms.append(PauliTerm(PauliString(np.zeros(5, bool), z), 0.3))
        # ...interleaved with anticommuting singletons
        assert_bit_identical(terms)
        assert_bit_identical(terms, reorder_within_blocks=False)

    def test_beyond_64_qubits(self, rng):
        """Multi-word packed rows (the 64-qubit word boundary) stay exact."""
        for num_qubits in (65, 70, 130):
            terms = random_sparse_terms(rng, num_qubits, 8)
            assert_bit_identical(terms)
            assert_bit_identical(terms, max_lookahead=2)

    def test_negative_signs_and_identity_terms(self, rng):
        terms = [
            PauliTerm(PauliString.from_label("-ZZXI"), 0.4),
            PauliTerm.from_label("IIII", 0.9),
            PauliTerm.from_label("XYIZ", -0.2),
            PauliTerm(PauliString.from_label("-YYYY"), 1.1),
        ]
        for flags in FLAG_COMBOS:
            assert_bit_identical(terms, **flags)

    def test_sum_input_matches_term_input(self, rng):
        terms = random_pauli_terms(rng, 5, 14)
        observable = SparsePauliSum(terms)
        assert_bit_identical(observable)
        packed_from_sum = CliffordExtractor().extract(observable)
        packed_from_terms = CliffordExtractor().extract(terms)
        assert packed_from_sum.optimized_circuit == packed_from_terms.optimized_circuit
        assert (
            packed_from_sum.conjugation.content_key()
            == packed_from_terms.conjugation.content_key()
        )

    def test_block_bounds_input_matches_blocks_input(self, rng):
        from repro.core.commuting import convert_commute_sets

        terms = random_pauli_terms(rng, 4, 12)
        blocks = convert_commute_sets(terms)
        bounds = [0]
        for block in blocks:
            bounds.append(bounds[-1] + len(block))
        via_blocks = CliffordExtractor().extract(terms, blocks=blocks)
        via_bounds = CliffordExtractor().extract(terms, block_bounds=bounds)
        assert via_blocks.optimized_circuit == via_bounds.optimized_circuit
        assert via_blocks.conjugation.content_key() == via_bounds.conjugation.content_key()


class TestChainTreeCostModel:
    def test_matches_explicit_tree_conjugation(self, rng):
        """The pure-int cost model equals synthesize_tree + conjugation."""
        for _ in range(120):
            size = int(rng.integers(1, 9))
            support = sorted(
                int(q) for q in rng.choice(16, size=size, replace=False)
            )
            x_bits = [int(b) for b in rng.integers(0, 2, size)]
            z_bits = [int(b) for b in rng.integers(0, 2, size)]
            # build the guide on the full register from its support bits
            x = np.zeros(16, dtype=bool)
            z = np.zeros(16, dtype=bool)
            for qubit, x_bit, z_bit in zip(support, x_bits, z_bits):
                x[qubit] = bool(x_bit)
                z[qubit] = bool(z_bit)
            guide = PauliString(x, z, int(np.count_nonzero(x & z)))
            gates, _ = synthesize_tree(
                support, lambda depth: guide if depth == 0 else None, recursive=False
            )
            expected = _conjugate_through_gates(guide, gates).weight
            assert chain_tree_cost(x_bits, z_bits) == expected

    def test_identity_guide_costs_zero(self):
        assert chain_tree_cost([0, 0, 0], [0, 0, 0]) == 0

    def test_all_z_guide_costs_one(self):
        assert chain_tree_cost([0, 0, 0, 0], [1, 1, 1, 1]) == 1


class TestExtractionResultParity:
    def test_terms_field_preserves_input_order(self, rng):
        terms = random_pauli_terms(rng, 4, 9)
        result = CliffordExtractor().extract(terms)
        assert result.terms == terms

    def test_empty_program_rejected(self):
        with pytest.raises(Exception):
            CliffordExtractor().extract([])

    def test_mismatched_block_bounds_rejected(self, rng):
        terms = random_pauli_terms(rng, 3, 5)
        with pytest.raises(Exception):
            CliffordExtractor().extract(terms, block_bounds=[0, 2])
