"""Correctness tests for Clifford Absorption (CA-Pre / CA-Post)."""

import numpy as np
import pytest

from repro.circuits.circuit import QuantumCircuit
from repro.circuits.statevector import Statevector
from repro.core.absorption import (
    ObservableAbsorber,
    absorb_observables,
    absorb_probabilities,
    build_probability_absorber,
)
from repro.core.extraction import CliffordExtractor
from repro.exceptions import AbsorptionError
from repro.paulis.pauli import PauliString
from repro.paulis.sum import SparsePauliSum
from repro.paulis.term import PauliTerm
from repro.synthesis.trotter import synthesize_trotter_circuit

from tests.conftest import random_pauli, random_pauli_terms


def _original_expectation(terms, observable: PauliString) -> float:
    original = synthesize_trotter_circuit(terms)
    return Statevector.from_circuit(original).expectation_value(observable)


def _absorbed_expectation_exact(result, absorbed) -> float:
    """Expectation of the absorbed observable on the optimized circuit (exact)."""
    state = Statevector.from_circuit(result.optimized_circuit)
    return absorbed.sign * state.expectation_value(absorbed.updated)


class TestObservableAbsorption:
    def test_exact_expectation_matches_original(self, rng):
        for _ in range(8):
            num_qubits = int(rng.integers(2, 5))
            terms = random_pauli_terms(rng, num_qubits, int(rng.integers(2, 6)))
            observable = random_pauli(rng, num_qubits).bare()
            result = CliffordExtractor().extract(terms)
            absorbed = ObservableAbsorber(result.conjugation).absorb_pauli(observable)
            assert _absorbed_expectation_exact(result, absorbed) == pytest.approx(
                _original_expectation(terms, observable), abs=1e-9
            )

    def test_counts_based_expectation_matches_original(self, rng):
        terms = random_pauli_terms(rng, 3, 4)
        observable = PauliString.from_label("XZY")
        result = CliffordExtractor().extract(terms)
        absorbed = ObservableAbsorber(result.conjugation).absorb_pauli(observable)
        # CA-Pre: append the measurement-basis rotation, then "measure" exactly.
        measured_circuit = result.optimized_circuit.compose(absorbed.measurement_basis)
        probabilities = Statevector.from_circuit(measured_circuit).probability_dict()
        counts = {key: int(round(value * 10**6)) for key, value in probabilities.items()}
        estimate = absorbed.expectation_from_counts(counts)
        assert estimate == pytest.approx(_original_expectation(terms, observable), abs=1e-4)

    def test_weighted_observable_sum(self, rng):
        terms = random_pauli_terms(rng, 3, 4)
        observable = SparsePauliSum.from_labels(["ZZI", "XIX", "IYZ"], [0.5, -1.25, 2.0])
        result = CliffordExtractor().extract(terms)
        absorbed_terms = absorb_observables(result, observable)
        total = 0.0
        state = Statevector.from_circuit(result.optimized_circuit)
        for coefficient, absorbed in zip(observable.coefficients, absorbed_terms):
            total += coefficient * absorbed.sign * state.expectation_value(absorbed.updated)
        original = synthesize_trotter_circuit(terms)
        expected = Statevector.from_circuit(original).expectation_value(observable)
        assert total == pytest.approx(expected, abs=1e-9)

    def test_absorbed_observable_is_pauli(self, rng):
        terms = random_pauli_terms(rng, 4, 6)
        result = CliffordExtractor().extract(terms)
        absorber = ObservableAbsorber(result.conjugation)
        for _ in range(10):
            observable = random_pauli(rng, 4).bare()
            absorbed = absorber.absorb_pauli(observable)
            assert absorbed.sign in (1.0, -1.0)
            assert absorbed.updated.sign == 1

    def test_absorption_preserves_commutation(self, rng):
        terms = random_pauli_terms(rng, 4, 6)
        result = CliffordExtractor().extract(terms)
        absorber = ObservableAbsorber(result.conjugation)
        for _ in range(10):
            first = random_pauli(rng, 4).bare()
            second = random_pauli(rng, 4).bare()
            assert first.commutes_with(second) == absorber.absorb_pauli(
                first
            ).updated.commutes_with(absorber.absorb_pauli(second).updated)

    def test_measurement_basis_maps_observable_to_z(self, rng):
        from repro.clifford.conjugation import conjugate_pauli_by_circuit

        terms = random_pauli_terms(rng, 3, 3)
        result = CliffordExtractor().extract(terms)
        absorber = ObservableAbsorber(result.conjugation)
        observable = PauliString.from_label("YXZ")
        absorbed = absorber.absorb_pauli(observable)
        rotated = conjugate_pauli_by_circuit(absorbed.updated, absorbed.measurement_basis)
        assert all(letter in ("I", "Z") for letter in rotated.letters())

    def test_size_mismatch_rejected(self, rng):
        terms = random_pauli_terms(rng, 3, 3)
        result = CliffordExtractor().extract(terms)
        with pytest.raises(AbsorptionError):
            ObservableAbsorber(result.conjugation).absorb_pauli(PauliString.from_label("XX"))

    def test_empty_counts_rejected(self, rng):
        terms = random_pauli_terms(rng, 2, 2)
        result = CliffordExtractor().extract(terms)
        absorbed = ObservableAbsorber(result.conjugation).absorb_pauli(
            PauliString.from_label("ZZ")
        )
        with pytest.raises(AbsorptionError):
            absorbed.expectation_from_counts({})


def _qaoa_terms(num_qubits: int, edges, gamma: float, beta: float) -> list[PauliTerm]:
    terms = []
    for first, second in edges:
        terms.append(
            PauliTerm(PauliString.from_sparse(num_qubits, [(first, "Z"), (second, "Z")]), gamma)
        )
    for qubit in range(num_qubits):
        terms.append(PauliTerm(PauliString.single(num_qubits, qubit, "X"), beta))
    return terms


class TestProbabilityAbsorption:
    def test_qaoa_distribution_recovered(self):
        edges = [(0, 1), (1, 2), (0, 2), (2, 3)]
        terms = _qaoa_terms(4, edges, gamma=0.83, beta=0.41)
        result = CliffordExtractor().extract(terms)
        absorber = absorb_probabilities(result)

        original = synthesize_trotter_circuit(terms)
        expected = Statevector.from_circuit(original).probability_dict()

        measured_circuit = result.optimized_circuit.compose(absorber.pre_circuit())
        measured = Statevector.from_circuit(measured_circuit).probability_dict()
        recovered = absorber.map_probabilities(measured)

        assert set(recovered) == set(expected)
        for key, value in expected.items():
            assert recovered[key] == pytest.approx(value, abs=1e-9)

    def test_qaoa_counts_mapping(self):
        edges = [(0, 1), (1, 2)]
        terms = _qaoa_terms(3, edges, gamma=0.5, beta=0.3)
        result = CliffordExtractor().extract(terms)
        absorber = absorb_probabilities(result)
        counts = {"101": 60, "110": 40}
        remapped = absorber.map_counts(counts)
        assert sum(remapped.values()) == 100

    def test_hadamard_cnot_tail_decomposition(self):
        """A hand-built H + CNOT tail decomposes exactly."""
        tail = QuantumCircuit(3)
        tail.h(0).h(1).h(2).cx(0, 1).cx(1, 2).cx(0, 2)
        absorber = build_probability_absorber(tail)
        assert sorted(absorber.hadamard_qubits) == [0, 1, 2]
        # Verify on explicit states: for any input bitstring circuit X^x, the
        # mapped distribution of [X^x, H layer] equals that of [X^x, tail].
        for basis in range(8):
            prep = QuantumCircuit(3)
            for qubit in range(3):
                if (basis >> qubit) & 1:
                    prep.x(qubit)
            expected = Statevector.from_circuit(prep.compose(tail)).probability_dict()
            measured = Statevector.from_circuit(
                prep.compose(absorber.pre_circuit())
            ).probability_dict()
            recovered = absorber.map_probabilities(measured)
            for key, value in expected.items():
                assert recovered.get(key, 0.0) == pytest.approx(value, abs=1e-9)

    def test_tail_with_x_corrections(self):
        """X gates in the tail become a non-zero affine shift."""
        tail = QuantumCircuit(2)
        tail.h(0).h(1).cx(0, 1).x(0)
        absorber = build_probability_absorber(tail)
        assert bool(np.any(absorber.shift))
        prep = QuantumCircuit(2)
        prep.x(1)
        expected = Statevector.from_circuit(prep.compose(tail)).probability_dict()
        measured = Statevector.from_circuit(prep.compose(absorber.pre_circuit())).probability_dict()
        recovered = absorber.map_probabilities(measured)
        for key, value in expected.items():
            assert recovered.get(key, 0.0) == pytest.approx(value, abs=1e-9)

    def test_cnot_only_tail(self):
        tail = QuantumCircuit(3)
        tail.cx(0, 1).cx(2, 0)
        absorber = build_probability_absorber(tail)
        assert absorber.hadamard_qubits == []
        assert absorber.map_bitstring("001") == "011"

    def test_unsupported_tail_rejected(self):
        tail = QuantumCircuit(2)
        tail.h(0).s(0).cx(0, 1)
        with pytest.raises(AbsorptionError):
            build_probability_absorber(tail)

    def test_bitstring_length_checked(self):
        tail = QuantumCircuit(2)
        tail.cx(0, 1)
        absorber = build_probability_absorber(tail)
        with pytest.raises(AbsorptionError):
            absorber.map_bitstring("0")

    def test_larger_qaoa_instance(self):
        edges = [(0, 1), (1, 2), (2, 3), (3, 4), (4, 0), (1, 3)]
        terms = _qaoa_terms(5, edges, gamma=1.1, beta=0.7)
        result = CliffordExtractor().extract(terms)
        absorber = absorb_probabilities(result)
        original = synthesize_trotter_circuit(terms)
        expected = Statevector.from_circuit(original).probability_dict()
        measured_circuit = result.optimized_circuit.compose(absorber.pre_circuit())
        measured = Statevector.from_circuit(measured_circuit).probability_dict()
        recovered = absorber.map_probabilities(measured)
        for key, value in expected.items():
            assert recovered.get(key, 0.0) == pytest.approx(value, abs=1e-9)


class TestProposition1:
    """For Z/I problem Hamiltonians with X mixers the tail is H-layer + CNOTs."""

    def test_tail_contains_only_h_and_cx(self):
        edges = [(0, 1), (1, 2), (0, 2)]
        terms = _qaoa_terms(3, edges, gamma=0.9, beta=0.2)
        result = CliffordExtractor().extract(terms)
        names = {gate.name for gate in result.extracted_clifford}
        assert names <= {"h", "cx"}

    def test_multi_layer_qaoa_still_absorbable(self):
        edges = [(0, 1), (1, 2)]
        layer = _qaoa_terms(3, edges, gamma=0.4, beta=0.3)
        two_layers = layer + _qaoa_terms(3, edges, gamma=0.7, beta=0.1)
        result = CliffordExtractor().extract(two_layers)
        absorber = absorb_probabilities(result)
        original = synthesize_trotter_circuit(two_layers)
        expected = Statevector.from_circuit(original).probability_dict()
        measured_circuit = result.optimized_circuit.compose(absorber.pre_circuit())
        measured = Statevector.from_circuit(measured_circuit).probability_dict()
        recovered = absorber.map_probabilities(measured)
        for key, value in expected.items():
            assert recovered.get(key, 0.0) == pytest.approx(value, abs=1e-9)

    def test_multi_body_z_problem_hamiltonian(self):
        """LABS-style problem terms (3- and 4-body Z strings) still absorb."""
        num_qubits = 4
        terms = [
            PauliTerm(PauliString.from_label("ZZZI"), 0.5),
            PauliTerm(PauliString.from_label("IZZZ"), 0.4),
            PauliTerm(PauliString.from_label("ZZZZ"), 0.3),
            PauliTerm(PauliString.from_label("ZIZI"), 0.2),
        ] + [PauliTerm(PauliString.single(num_qubits, q, "X"), 0.7) for q in range(num_qubits)]
        result = CliffordExtractor().extract(terms)
        absorber = absorb_probabilities(result)
        original = synthesize_trotter_circuit(terms)
        expected = Statevector.from_circuit(original).probability_dict()
        measured_circuit = result.optimized_circuit.compose(absorber.pre_circuit())
        measured = Statevector.from_circuit(measured_circuit).probability_dict()
        recovered = absorber.map_probabilities(measured)
        for key, value in expected.items():
            assert recovered.get(key, 0.0) == pytest.approx(value, abs=1e-9)
