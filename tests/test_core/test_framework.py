"""End-to-end tests of the QuCLEAR framework object."""

import pytest

from repro.circuits.statevector import Statevector, circuits_equivalent
from repro.core.framework import QuCLEAR
from repro.paulis.pauli import PauliString
from repro.paulis.sum import SparsePauliSum
from repro.paulis.term import PauliTerm
from repro.synthesis.trotter import rotation_terms_from_hamiltonian, synthesize_trotter_circuit

from tests.conftest import random_pauli_terms


class TestCompile:
    def test_compile_equivalence_with_local_opt(self, rng):
        for _ in range(6):
            terms = random_pauli_terms(rng, 3, 6)
            result = QuCLEAR().compile(terms)
            original = synthesize_trotter_circuit(terms)
            reconstructed = result.circuit.compose(result.extracted_clifford)
            assert circuits_equivalent(original, reconstructed)

    def test_local_opt_never_increases_cx(self, rng):
        terms = random_pauli_terms(rng, 4, 8)
        with_opt = QuCLEAR(local_optimize=True).compile(terms)
        without_opt = QuCLEAR(local_optimize=False).compile(terms)
        assert with_opt.cx_count() <= without_opt.cx_count()

    def test_compile_beats_native_on_chemistry_like_terms(self, rng):
        # High-weight Pauli strings: extraction should roughly halve the CNOTs.
        labels = ["XXYZ", "YZXX", "ZZZZ", "XYXY", "ZXYZ", "YYXX"]
        terms = [PauliTerm.from_label(label, 0.1 * (i + 1)) for i, label in enumerate(labels)]
        result = QuCLEAR().compile(terms)
        native = synthesize_trotter_circuit(terms)
        assert result.cx_count() < native.cx_count()

    def test_metrics_keys(self, rng):
        terms = random_pauli_terms(rng, 3, 3)
        metrics = QuCLEAR().compile(terms).metrics()
        assert set(metrics) == {
            "cx_count",
            "entangling_depth",
            "single_qubit_count",
            "compile_seconds",
        }

    def test_compile_hamiltonian(self):
        hamiltonian = SparsePauliSum.from_labels(["ZZI", "IZZ", "XII"], [0.5, 0.5, 0.3])
        result = QuCLEAR().compile_hamiltonian(hamiltonian, time_step=0.7)
        terms = rotation_terms_from_hamiltonian(hamiltonian, time=0.7)
        original = synthesize_trotter_circuit(terms)
        reconstructed = result.circuit.compose(result.extracted_clifford)
        assert circuits_equivalent(original, reconstructed)

    def test_compile_accepts_sparse_pauli_sum(self):
        observable = SparsePauliSum.from_labels(["ZZ", "XX"], [0.3, 0.4])
        terms = [PauliTerm(t.pauli, t.coefficient) for t in observable]
        result = QuCLEAR().compile(terms)
        assert result.metadata["rotation_count"] == 2

    def test_compile_time_recorded(self, rng):
        terms = random_pauli_terms(rng, 3, 3)
        assert QuCLEAR().compile(terms).compile_seconds > 0


class TestHybridWorkflows:
    def test_observable_workflow(self, rng):
        terms = random_pauli_terms(rng, 3, 5)
        observable = PauliString.from_label("ZXY")
        result = QuCLEAR().compile(terms)
        absorbed = result.absorb_observables([observable])[0]
        optimized_value = absorbed.sign * Statevector.from_circuit(
            result.circuit
        ).expectation_value(absorbed.updated)
        original_value = Statevector.from_circuit(
            synthesize_trotter_circuit(terms)
        ).expectation_value(observable)
        assert optimized_value == pytest.approx(original_value, abs=1e-9)

    def test_probability_workflow(self):
        num_qubits = 4
        terms = []
        for first, second in [(0, 1), (1, 2), (2, 3), (3, 0)]:
            terms.append(
                PauliTerm(
                    PauliString.from_sparse(num_qubits, [(first, "Z"), (second, "Z")]), 0.6
                )
            )
        for qubit in range(num_qubits):
            terms.append(PauliTerm(PauliString.single(num_qubits, qubit, "X"), 0.9))
        result = QuCLEAR().compile(terms)
        absorber = result.probability_absorber()
        original = Statevector.from_circuit(synthesize_trotter_circuit(terms)).probability_dict()
        measured = Statevector.from_circuit(
            result.circuit.compose(absorber.pre_circuit())
        ).probability_dict()
        recovered = absorber.map_probabilities(measured)
        for key, value in original.items():
            assert recovered.get(key, 0.0) == pytest.approx(value, abs=1e-9)

    def test_ablation_flags_change_behaviour(self, rng):
        """All feature combinations still produce correct circuits."""
        terms = random_pauli_terms(rng, 3, 6)
        original = synthesize_trotter_circuit(terms)
        for reorder in (False, True):
            for recursive in (False, True):
                compiler = QuCLEAR(
                    reorder_within_blocks=reorder,
                    recursive_tree=recursive,
                    local_optimize=False,
                )
                result = compiler.compile(terms)
                reconstructed = result.circuit.compose(result.extracted_clifford)
                assert circuits_equivalent(original, reconstructed)
