"""Correctness tests for Clifford Extraction (Algorithm 2).

The central invariant: the original Pauli-rotation circuit is unitarily
equivalent to the optimized circuit followed by the extracted Clifford tail.
"""

import numpy as np
import pytest

from repro.circuits.circuit import QuantumCircuit
from repro.circuits.statevector import circuit_unitary, circuits_equivalent
from repro.core.commuting import convert_commute_sets, count_commuting_blocks
from repro.core.extraction import CliffordExtractor
from repro.core.tree_synthesis import chain_tree, synthesize_tree
from repro.exceptions import SynthesisError
from repro.paulis.pauli import PauliString
from repro.paulis.term import PauliTerm
from repro.synthesis.trotter import synthesize_trotter_circuit

from tests.conftest import random_pauli_terms


def _roundtrip_equivalent(terms) -> bool:
    """original == optimized followed by extracted tail (up to global phase)."""
    extractor = CliffordExtractor()
    result = extractor.extract(terms)
    original = synthesize_trotter_circuit(terms)
    reconstructed = result.optimized_circuit.compose(result.extracted_clifford)
    return circuits_equivalent(original, reconstructed)


class TestCommutingBlocks:
    def test_all_commuting_single_block(self):
        terms = [PauliTerm.from_label(label, 0.1) for label in ["ZZI", "IZZ", "ZIZ"]]
        assert count_commuting_blocks(terms) == 1

    def test_anticommuting_split(self):
        terms = [PauliTerm.from_label(label, 0.1) for label in ["ZI", "XI", "ZI"]]
        assert count_commuting_blocks(terms) == 3

    def test_blocks_preserve_terms(self, rng):
        terms = random_pauli_terms(rng, 4, 12)
        blocks = convert_commute_sets(terms)
        flattened = [term for block in blocks for term in block]
        assert flattened == terms

    def test_block_members_mutually_commute(self, rng):
        terms = random_pauli_terms(rng, 5, 20)
        for block in convert_commute_sets(terms):
            for i, first in enumerate(block):
                for second in block[i + 1 :]:
                    assert first.pauli.commutes_with(second.pauli)

    def test_empty_input(self):
        assert convert_commute_sets([]) == []


class TestTreeSynthesis:
    def test_chain_tree(self):
        gates, root = chain_tree([2, 5, 7])
        assert root == 7
        assert [g.qubits for g in gates] == [(2, 5), (5, 7)]

    def test_empty_support_rejected(self):
        with pytest.raises(SynthesisError):
            synthesize_tree([], lambda depth: None)

    def test_single_qubit_support(self):
        gates, root = synthesize_tree([3], lambda depth: None)
        assert gates == []
        assert root == 3

    def test_no_lookahead_falls_back_to_chain(self):
        gates, root = synthesize_tree([0, 1, 2], lambda depth: None)
        assert root == 2
        assert len(gates) == 2

    def test_tree_is_spanning(self, rng):
        """The tree must contain exactly |support| - 1 CNOTs and reach the root."""
        guide = PauliString.from_label("ZXIYZXZ")
        support = list(range(7))
        gates, root = synthesize_tree(support, lambda d: guide if d == 0 else None)
        assert len(gates) == len(support) - 1
        assert root in support

    def test_paper_figure7_example(self):
        """Reproduce the worked example of Fig. 7(b): P2' weight 6 -> 3."""
        current = PauliString.from_label("YZXXYZZ")
        following = PauliString.from_label("ZZZIXYX")  # P2' after basis extraction
        support = current.support
        assert len(support) == 7
        gates, root = synthesize_tree(
            support, lambda depth: following if depth == 0 else None
        )
        from repro.core.extraction import _conjugate_through_gates

        optimized = _conjugate_through_gates(following, gates)
        assert optimized.to_label(include_sign=False) == "IIIIXYX"
        assert optimized.weight == 3

    def test_all_z_guide_reduces_to_weight_one(self):
        guide = PauliString.from_label("ZZZZZ")
        gates, _ = synthesize_tree(list(range(5)), lambda d: guide if d == 0 else None)
        from repro.core.extraction import _conjugate_through_gates

        assert _conjugate_through_gates(guide, gates).weight == 1

    def test_all_x_guide_reduces_to_half(self):
        guide = PauliString.from_label("XXXX")
        gates, _ = synthesize_tree(list(range(4)), lambda d: guide if d == 0 else None)
        from repro.core.extraction import _conjugate_through_gates

        assert _conjugate_through_gates(guide, gates).weight == 2


class TestExtractionEquivalence:
    @pytest.mark.parametrize("labels", [
        ["ZZ", "XX"],
        ["ZZZZ", "YYXX"],
        ["XYZ", "ZZI", "IXX"],
        ["ZIZ", "IZZ", "XII", "IXI", "IIX"],
    ])
    def test_fixed_programs(self, labels):
        terms = [PauliTerm.from_label(label, 0.37 * (i + 1)) for i, label in enumerate(labels)]
        assert _roundtrip_equivalent(terms)

    def test_random_programs(self, rng):
        for _ in range(12):
            num_qubits = int(rng.integers(2, 5))
            terms = random_pauli_terms(rng, num_qubits, int(rng.integers(2, 8)))
            assert _roundtrip_equivalent(terms)

    def test_random_programs_without_reordering(self, rng):
        extractor = CliffordExtractor(reorder_within_blocks=False)
        for _ in range(6):
            terms = random_pauli_terms(rng, 3, 6)
            result = extractor.extract(terms)
            original = synthesize_trotter_circuit(terms)
            reconstructed = result.optimized_circuit.compose(result.extracted_clifford)
            assert circuits_equivalent(original, reconstructed)

    def test_random_programs_non_recursive(self, rng):
        extractor = CliffordExtractor(recursive_tree=False)
        for _ in range(6):
            terms = random_pauli_terms(rng, 3, 6)
            result = extractor.extract(terms)
            original = synthesize_trotter_circuit(terms)
            reconstructed = result.optimized_circuit.compose(result.extracted_clifford)
            assert circuits_equivalent(original, reconstructed)

    def test_single_term_program(self):
        terms = [PauliTerm.from_label("XYZX", 0.81)]
        assert _roundtrip_equivalent(terms)

    def test_identity_terms_are_skipped(self):
        terms = [
            PauliTerm.from_label("ZZ", 0.4),
            PauliTerm.from_label("II", 0.9),
            PauliTerm.from_label("XX", 0.2),
        ]
        result = CliffordExtractor().extract(terms)
        assert result.rotation_count == 2

    def test_negative_sign_terms(self):
        terms = [
            PauliTerm(PauliString.from_label("-ZZ"), 0.4),
            PauliTerm.from_label("XX", 0.7),
        ]
        assert _roundtrip_equivalent(terms)

    def test_empty_program_rejected(self):
        with pytest.raises(SynthesisError):
            CliffordExtractor().extract([])

    def test_mixed_qubit_counts_rejected(self):
        terms = [PauliTerm.from_label("X", 0.1), PauliTerm.from_label("XX", 0.1)]
        with pytest.raises(SynthesisError):
            CliffordExtractor().extract(terms)


class TestExtractionStructure:
    def test_rotation_count_matches_terms(self, rng):
        terms = random_pauli_terms(rng, 4, 10)
        result = CliffordExtractor().extract(terms)
        assert result.rotation_count == 10
        assert result.optimized_circuit.count_ops()["rz"] == 10

    def test_extracted_tail_is_clifford(self, rng):
        terms = random_pauli_terms(rng, 4, 8)
        result = CliffordExtractor().extract(terms)
        assert all(gate.is_clifford for gate in result.extracted_clifford)

    def test_optimized_cx_at_most_native(self, rng):
        """Extraction alone should not exceed half the native CNOT count by much."""
        terms = random_pauli_terms(rng, 5, 12)
        result = CliffordExtractor().extract(terms)
        native = synthesize_trotter_circuit(terms)
        assert result.optimized_circuit.cx_count() <= native.cx_count()

    def test_paper_figure2_example(self):
        """e^{i ZZZZ t1} e^{i YYXX t2}: 12 native CNOTs reduced (8 after CE alone)."""
        terms = [PauliTerm.from_label("ZZZZ", 0.3), PauliTerm.from_label("YYXX", 0.5)]
        native = synthesize_trotter_circuit(terms)
        assert native.cx_count() == 12
        result = CliffordExtractor().extract(terms)
        # The second rotation collapses to a two-qubit Pauli: 3 + 1 tree CNOTs.
        assert result.optimized_circuit.cx_count() <= 8
        assert _roundtrip_equivalent(terms)

    def test_conjugation_matches_tail(self, rng):
        """The stored tableau equals conjugation by the inverse of the tail."""
        from repro.clifford.conjugation import conjugate_pauli_by_circuit
        from tests.conftest import random_pauli

        terms = random_pauli_terms(rng, 3, 5)
        result = CliffordExtractor().extract(terms)
        tail_inverse = result.extracted_clifford.inverse()
        for _ in range(10):
            pauli = random_pauli(rng, 3)
            via_tableau = result.conjugation.conjugate(pauli)
            via_circuit = conjugate_pauli_by_circuit(pauli, tail_inverse)
            assert via_tableau == via_circuit

    def test_elapsed_time_recorded(self, rng):
        terms = random_pauli_terms(rng, 3, 4)
        result = CliffordExtractor().extract(terms)
        assert result.elapsed_seconds > 0
