"""Tests for the baseline compilers and the evaluation harness."""

import pytest

from repro.baselines import (
    BASELINE_COMPILERS,
    compile_naive,
    compile_paulihedral_like,
    compile_qiskit_like,
    compile_rustiq_like,
    compile_tket_like,
    compile_with,
)
from repro.circuits.statevector import circuits_equivalent
from repro.evaluation.breakdown import absorption_style, feature_breakdown, local_optimization_ablation
from repro.evaluation.comparison import compare_compilers, compare_on_benchmark
from repro.evaluation.mapping import compare_mapped_compilers
from repro.evaluation.reporting import format_table
from repro.exceptions import WorkloadError
from repro.paulis.term import PauliTerm
from repro.synthesis.trotter import synthesize_trotter_circuit
from repro.transpile.coupling import CouplingMap
from repro.workloads.qaoa import maxcut_qaoa_terms, regular_graph

from tests.conftest import random_pauli_terms


CHEMISTRY_LIKE_LABELS = ["XXYZ", "YZXX", "ZZZZ", "XYXY", "ZXYZ", "YYXX", "XZZY", "ZYXZ"]


def _chemistry_like_terms():
    return [
        PauliTerm.from_label(label, 0.13 * (index + 1))
        for index, label in enumerate(CHEMISTRY_LIKE_LABELS)
    ]


class TestBaselineCorrectness:
    """Every baseline must preserve the program unitary exactly."""

    @pytest.mark.parametrize(
        "compiler",
        [compile_naive, compile_qiskit_like, compile_paulihedral_like, compile_tket_like, compile_rustiq_like],
    )
    def test_unitary_preserved_on_random_programs(self, compiler, rng):
        terms = random_pauli_terms(rng, 3, 5)
        original = synthesize_trotter_circuit(terms)
        result = compiler(terms)
        assert circuits_equivalent(original, result.circuit)

    @pytest.mark.parametrize("name", sorted(BASELINE_COMPILERS))
    def test_unitary_preserved_on_chemistry_terms(self, name):
        terms = _chemistry_like_terms()
        original = synthesize_trotter_circuit(terms)
        result = compile_with(name, terms)
        assert circuits_equivalent(original, result.circuit)

    def test_unknown_baseline(self):
        with pytest.raises(WorkloadError):
            compile_with("nope", _chemistry_like_terms())


class TestBaselineBehaviour:
    def test_qiskit_like_not_worse_than_naive(self, rng):
        terms = random_pauli_terms(rng, 4, 8)
        assert compile_qiskit_like(terms).cx_count() <= compile_naive(terms).cx_count()

    def test_paulihedral_like_benefits_from_commuting_terms(self):
        # Two identical commuting blocks: the mirrored trees must cancel.
        terms = [
            PauliTerm.from_label("ZZZI", 0.3),
            PauliTerm.from_label("IZZZ", 0.4),
            PauliTerm.from_label("ZZZI", 0.5),
        ]
        paulihedral = compile_paulihedral_like(terms)
        naive = compile_naive(terms)
        assert paulihedral.cx_count() < naive.cx_count()

    def test_rustiq_like_metadata(self, rng):
        terms = random_pauli_terms(rng, 3, 5)
        result = compile_rustiq_like(terms)
        assert "network_cx" in result.metadata and "frame_cx" in result.metadata

    def test_tket_like_reports_blocks(self, rng):
        terms = random_pauli_terms(rng, 3, 5)
        assert "num_blocks" in compile_tket_like(terms).metadata

    def test_metrics_keys(self, rng):
        terms = random_pauli_terms(rng, 3, 4)
        metrics = compile_naive(terms).metrics()
        assert set(metrics) == {
            "cx_count",
            "entangling_depth",
            "single_qubit_count",
            "compile_seconds",
        }


class TestEvaluationHarness:
    def test_compare_compilers_contains_all_entries(self):
        terms = _chemistry_like_terms()
        comparison = compare_compilers(terms, workload="unit-test")
        assert set(comparison.results) == {
            "QuCLEAR",
            "qiskit-like",
            "rustiq-like",
            "paulihedral-like",
            "tket-like",
        }
        assert comparison.num_paulis == len(terms)

    def test_quclear_wins_on_chemistry_like_terms(self):
        comparison = compare_compilers(_chemistry_like_terms(), workload="chemistry")
        assert comparison.best_compiler("cx_count") == "QuCLEAR"
        assert comparison.reduction_vs("qiskit-like") > 0

    def test_compare_on_benchmark(self):
        comparison = compare_on_benchmark("UCC-(2,4)", compilers=("QuCLEAR", "qiskit-like"))
        assert comparison.workload == "UCC-(2,4)"
        assert comparison.cx_counts()["QuCLEAR"] < comparison.cx_counts()["qiskit-like"]

    def test_feature_breakdown_monotone_for_chemistry(self):
        breakdown = feature_breakdown(_chemistry_like_terms())
        assert set(breakdown) == {
            "native",
            "tree_extraction",
            "commutation",
            "absorption",
            "local_optimization",
        }
        # Absorption always removes the tail, and the local pass never adds gates.
        assert breakdown["absorption"] <= breakdown["commutation"]
        assert breakdown["local_optimization"] <= breakdown["absorption"]
        assert breakdown["local_optimization"] < breakdown["native"]

    def test_local_optimization_ablation(self):
        ablation = local_optimization_ablation(_chemistry_like_terms())
        assert (
            ablation["with_local_optimization"]["cx_count"]
            <= ablation["without_local_optimization"]["cx_count"]
        )

    def test_absorption_style_detection(self):
        qaoa_terms = maxcut_qaoa_terms(regular_graph(6, 2, seed=4))
        assert absorption_style(qaoa_terms) == "probabilities"
        assert absorption_style(_chemistry_like_terms()) == "observables"

    def test_mapped_comparison(self):
        terms = maxcut_qaoa_terms(regular_graph(8, 2, seed=4))
        coupling = CouplingMap.grid(3, 3)
        comparison = compare_mapped_compilers(terms, coupling, compilers=("QuCLEAR", "qiskit-like"))
        assert set(comparison.results) == {"QuCLEAR", "qiskit-like"}
        for metrics in comparison.results.values():
            assert "swap_count" in metrics

    def test_format_table(self):
        rows = [{"name": "a", "value": 1.23456}, {"name": "b", "value": 7}]
        text = format_table(rows)
        assert "name" in text and "1.235" in text

    def test_format_table_empty(self):
        assert format_table([]) == "(no rows)"
