"""Tests for the array-backend registry (repro.arrays.registry).

Resolution precedence, the ``REPRO_ARRAY_BACKEND`` environment override,
unknown-name and wrong-type rejection, singleton semantics, user
registration, and the CuPy-absent error path.
"""

import pytest

from repro.arrays import (
    ENV_VAR,
    ArrayBackend,
    CupyBackend,
    NumpyBackend,
    ReferenceBackend,
    available_backends,
    cupy_available,
    default_backend,
    register_backend,
    resolve_backend,
)
from repro.exceptions import ArrayBackendError


class TestResolveBackend:
    def test_default_is_numpy(self, monkeypatch):
        monkeypatch.delenv(ENV_VAR, raising=False)
        backend = resolve_backend(None)
        assert isinstance(backend, NumpyBackend)
        assert backend.name == "numpy"
        assert default_backend() is backend

    def test_by_name(self):
        assert isinstance(resolve_backend("numpy"), NumpyBackend)
        assert isinstance(resolve_backend("reference"), ReferenceBackend)

    def test_singletons(self):
        assert resolve_backend("numpy") is resolve_backend("numpy")
        assert resolve_backend("reference") is resolve_backend("reference")

    def test_instance_passthrough(self):
        backend = ReferenceBackend()
        assert resolve_backend(backend) is backend

    def test_unknown_name_lists_registered(self):
        with pytest.raises(ArrayBackendError, match="numpy"):
            resolve_backend("no-such-backend")

    def test_wrong_type_rejected(self):
        with pytest.raises(ArrayBackendError):
            resolve_backend(42)

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "reference")
        assert isinstance(resolve_backend(None), ReferenceBackend)
        # explicit spec always wins over the environment
        assert isinstance(resolve_backend("numpy"), NumpyBackend)

    def test_env_override_unknown_name(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "no-such-backend")
        with pytest.raises(ArrayBackendError):
            resolve_backend(None)

    def test_available_backends(self):
        names = available_backends()
        assert "numpy" in names
        assert "reference" in names
        assert "cupy" in names


class TestRegisterBackend:
    def test_duplicate_rejected(self):
        with pytest.raises(ArrayBackendError, match="already registered"):
            register_backend("numpy", NumpyBackend)

    def test_register_and_resolve(self):
        class MyBackend(NumpyBackend):
            name = "test-custom"

        register_backend("test-custom", MyBackend, replace=True)
        resolved = resolve_backend("test-custom")
        assert isinstance(resolved, MyBackend)
        assert resolve_backend("test-custom") is resolved

    def test_replace_clears_cached_instance(self):
        class First(NumpyBackend):
            name = "test-replaced"

        class Second(NumpyBackend):
            name = "test-replaced"

        register_backend("test-replaced", First, replace=True)
        first = resolve_backend("test-replaced")
        register_backend("test-replaced", Second, replace=True)
        second = resolve_backend("test-replaced")
        assert isinstance(first, First)
        assert isinstance(second, Second)


class TestCupyBackend:
    @pytest.mark.skipif(cupy_available(), reason="cupy is installed here")
    def test_absent_cupy_raises_actionable_error(self):
        with pytest.raises(ArrayBackendError, match="cupy"):
            resolve_backend("cupy")

    @pytest.mark.skipif(not cupy_available(), reason="cupy not installed")
    def test_cupy_resolves_when_available(self):
        backend = resolve_backend("cupy")
        assert isinstance(backend, CupyBackend)
        assert backend.name == "cupy"

    def test_cupy_listed_regardless(self):
        # the registry advertises the name; resolution is what gates on the
        # import, with an error that says how to fix it
        assert "cupy" in available_backends()


class TestBaseClass:
    def test_abstract_backend_is_importable_surface(self):
        assert issubclass(NumpyBackend, ArrayBackend)
        assert issubclass(ReferenceBackend, ArrayBackend)
        assert issubclass(CupyBackend, ArrayBackend)
