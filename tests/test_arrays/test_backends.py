"""Backend equivalence: every ArrayBackend computes the same function.

The pure-Python :class:`ReferenceBackend` is the ground truth — its word ops
are python-int arithmetic, sharing no vectorized code with the numpy hot
path — so bit-identical agreement here is evidence the packed engine's
semantics survived the backend refactor.  Every check is parameterized over
the registered backends (CuPy joins automatically when installed and skips
cleanly when not) and compares against plain numpy results.
"""

import numpy as np
import pytest

import repro
from repro.arrays import NUMPY, cupy_available, resolve_backend
from repro.clifford.engine import PackedConjugator
from repro.core.commuting import commuting_block_bounds
from repro.paulis.packed import PackedPauliTable
from repro.paulis.sum import SparsePauliSum

from tests.conftest import random_clifford_circuit, random_pauli, random_pauli_terms

BACKEND_PARAMS = [
    pytest.param("numpy", id="numpy"),
    pytest.param("reference", id="reference"),
    pytest.param(
        "cupy",
        id="cupy",
        marks=pytest.mark.skipif(not cupy_available(), reason="cupy not installed"),
    ),
]


@pytest.fixture(params=BACKEND_PARAMS)
def backend(request):
    return resolve_backend(request.param)


def random_table(rng, num_qubits, num_rows, backend=None):
    paulis = [random_pauli(rng, num_qubits) for _ in range(num_rows)]
    return PackedPauliTable.from_paulis(paulis, backend=backend), paulis


def assert_tables_identical(actual: PackedPauliTable, expected: PackedPauliTable):
    __tracebackhide__ = True
    a, e = actual.to_host(), expected.to_host()
    assert np.array_equal(a.x_words, e.x_words)
    assert np.array_equal(a.z_words, e.z_words)
    assert np.array_equal(a.phases, e.phases)


class TestGateStreaming:
    @pytest.mark.parametrize("num_qubits", [3, 64, 70, 129])
    def test_circuit_application_matches_numpy(self, rng, backend, num_qubits):
        circuit = random_clifford_circuit(rng, num_qubits, 60)
        reference_table, paulis = random_table(rng, num_qubits, 24)
        table = reference_table.copy().to_backend(backend)
        reference_table.apply_circuit(circuit)
        table.apply_circuit(circuit)
        assert table.backend is backend
        assert_tables_identical(table, reference_table)

    def test_single_gates_match(self, rng, backend):
        from repro.circuits.gate import Gate

        names_1q = ["h", "s", "sdg", "sx", "sxdg", "x", "y", "z", "i"]
        names_2q = ["cx", "cz", "swap"]
        reference_table, _ = random_table(rng, 67, 16)
        table = reference_table.copy().to_backend(backend)
        for name in names_1q:
            gate = Gate(name, (65,))
            reference_table.apply_gate(gate)
            table.apply_gate(gate)
            assert_tables_identical(table, reference_table)
        for name in names_2q:
            gate = Gate(name, (2, 66))
            reference_table.apply_gate(gate)
            table.apply_gate(gate)
            assert_tables_identical(table, reference_table)

    def test_basis_layer_matches(self, rng, backend):
        reference_table, _ = random_table(rng, 70, 12)
        table = reference_table.copy().to_backend(backend)
        be = table.backend
        y_mask = reference_table.x_words[0] & reference_table.z_words[0]
        h_mask = reference_table.x_words[0].copy()
        reference_table.apply_basis_layer(y_mask, h_mask, start=1)
        table.apply_basis_layer(
            be.asarray_words(y_mask), be.asarray_words(h_mask), start=1
        )
        assert_tables_identical(table, reference_table)


class TestDerivedQuantities:
    def test_weights_and_sorting_match(self, rng, backend):
        reference_table, _ = random_table(rng, 100, 20)
        table = reference_table.to_backend(backend)
        assert np.array_equal(table.weights(), reference_table.weights())
        assert np.array_equal(table.num_y(), reference_table.num_y())
        assert np.array_equal(table.argsort_weights(), reference_table.argsort_weights())

    def test_row_keys_and_signs_match(self, rng, backend):
        reference_table, _ = random_table(rng, 66, 10)
        table = reference_table.to_backend(backend)
        assert np.array_equal(table.signs(), reference_table.signs())
        assert np.array_equal(table.hermitian_mask(), reference_table.hermitian_mask())
        for row in range(len(table)):
            assert table.row_key(row) == reference_table.row_key(row)

    def test_commuting_bounds_match(self, rng, backend):
        terms = random_pauli_terms(rng, 40, 50)
        reference_table = PackedPauliTable.from_paulis(t.pauli for t in terms)
        table = reference_table.to_backend(backend)
        assert commuting_block_bounds(table) == commuting_block_bounds(reference_table)


class TestConjugation:
    def test_conjugate_table_matches(self, rng, backend):
        circuit = random_clifford_circuit(rng, 68, 80)
        reference_conjugator = PackedConjugator.from_circuit(circuit)
        conjugator = PackedConjugator.from_circuit(circuit, backend=backend)
        reference_table, _ = random_table(rng, 68, 18)
        out_ref = reference_conjugator.conjugate_table(reference_table)
        out = conjugator.conjugate_table(reference_table.to_backend(backend))
        assert out.backend is backend
        assert_tables_identical(out, out_ref)
        assert conjugator.content_key() == reference_conjugator.content_key()


class TestCompileEquivalence:
    @pytest.mark.parametrize("level", [0, 1, 2, 3])
    def test_levels_bit_identical_across_backends(self, rng, backend, level):
        terms = random_pauli_terms(rng, 12, 30)
        reference_result = repro.compile(terms, level=level)
        result = repro.compile(terms, level=level, backend=backend)
        assert result.metadata["array_backend"] == backend.name
        assert result.circuit == reference_result.circuit
        if reference_result.extracted_clifford is not None:
            assert result.extracted_clifford == reference_result.extracted_clifford
            assert (
                result.extraction.conjugation.content_key()
                == reference_result.extraction.conjugation.content_key()
            )

    def test_sum_input_round_trips(self, rng, backend):
        terms = random_pauli_terms(rng, 10, 20)
        observable = SparsePauliSum(terms)
        reference_result = repro.compile(observable, level=3)
        result = repro.compile(observable, level=3, backend=backend)
        assert result.circuit == reference_result.circuit


class TestBoundary:
    def test_tableau_stays_host_side(self, rng, backend):
        terms = random_pauli_terms(rng, 8, 16)
        result = repro.compile(terms, level=3, backend=backend)
        rows = result.extraction.conjugation._rows
        assert rows.backend is NUMPY
        assert isinstance(rows.x_words, np.ndarray)

    def test_to_backend_to_host_round_trip(self, rng, backend):
        reference_table, _ = random_table(rng, 65, 9)
        table = reference_table.to_backend(backend)
        assert table.to_backend(backend) is table
        back = table.to_host()
        assert back.backend is NUMPY
        assert_tables_identical(back, reference_table)


class TestCacheKeyIndependence:
    def test_cache_key_is_backend_independent(self, rng, backend):
        from repro.service.cache import cache_key

        terms = random_pauli_terms(rng, 9, 14)
        observable = SparsePauliSum(terms)
        key = cache_key(observable)
        moved = SparsePauliSum.from_packed(
            observable.packed_table.to_backend(backend),
            observable.coefficient_vector(),
        )
        assert cache_key(moved) == key

    def test_wire_serialization_is_backend_independent(self, rng, backend):
        from repro.service.serialize import result_from_wire, result_to_wire

        terms = random_pauli_terms(rng, 8, 12)
        reference_wire = result_to_wire(repro.compile(terms, level=3))
        wire = result_to_wire(repro.compile(terms, level=3, backend=backend))
        # payloads differ only in the recorded backend name
        ref_meta = dict(reference_wire["metadata"])
        meta = dict(wire["metadata"])
        ref_meta.pop("array_backend"), meta.pop("array_backend")
        ref_meta.pop("pass_timings"), meta.pop("pass_timings")
        assert meta == ref_meta
        restored = result_from_wire(wire)
        assert restored.circuit == result_from_wire(reference_wire).circuit


class TestDeprecationShims:
    def test_module_level_helpers_warn_and_delegate(self, rng):
        from repro.circuits.gate import Gate
        from repro.paulis.packed import apply_gate_to_words

        reference_table, _ = random_table(rng, 5, 4)
        shimmed = reference_table.copy()
        with pytest.warns(DeprecationWarning):
            apply_gate_to_words(
                shimmed.x_words,
                shimmed.z_words,
                shimmed.phases,
                Gate("h", (1,)),
            )
        direct = reference_table.copy()
        NUMPY.apply_gate_to_words(
            direct.x_words, direct.z_words, direct.phases, Gate("h", (1,))
        )
        assert np.array_equal(shimmed.x_words, direct.x_words)
        assert np.array_equal(shimmed.z_words, direct.z_words)
        assert np.array_equal(shimmed.phases, direct.phases)


class TestTargetIntegration:
    def test_target_array_backend_routes_the_run(self, rng):
        from repro.compiler.target import Target

        terms = random_pauli_terms(rng, 6, 10)
        target = Target.fully_connected(6).with_array_backend("reference")
        result = repro.compile(terms, target=target, level=3)
        assert result.metadata["array_backend"] == "reference"

    def test_explicit_argument_wins_over_target(self, rng):
        from repro.compiler.target import Target

        terms = random_pauli_terms(rng, 6, 10)
        target = Target.fully_connected(6).with_array_backend("reference")
        result = repro.compile(terms, target=target, level=3, backend="numpy")
        assert result.metadata["array_backend"] == "numpy"

    def test_env_override_applies_when_nothing_explicit(self, rng, monkeypatch):
        from repro.arrays import ENV_VAR

        monkeypatch.setenv(ENV_VAR, "reference")
        terms = random_pauli_terms(rng, 6, 10)
        result = repro.compile(terms, level=2)
        assert result.metadata["array_backend"] == "reference"

    def test_target_rejects_bad_backend_type(self):
        from repro.compiler.target import Target
        from repro.exceptions import CompilerError

        with pytest.raises(CompilerError, match="array_backend"):
            Target(num_qubits=4, array_backend=42)

    def test_presets_carry_no_backend(self):
        from repro.compiler.target import Target

        assert Target.sycamore().array_backend is None
        assert Target.fully_connected(4).array_backend is None

    def test_compile_many_threads_backend(self, rng):
        terms_a = random_pauli_terms(rng, 6, 8)
        terms_b = random_pauli_terms(rng, 6, 8)
        results = repro.compile_many([terms_a, terms_b], backend="reference")
        assert [r.metadata["array_backend"] for r in results] == ["reference"] * 2
        reference = [repro.compile(terms_a), repro.compile(terms_b)]
        assert [r.circuit for r in results] == [r.circuit for r in reference]

    def test_compile_template_accepts_backend(self, rng):
        from repro.parametric import ParametricProgram

        terms = random_pauli_terms(rng, 6, 8)
        program = ParametricProgram.from_terms(
            [t.with_coefficient(1.0) for t in terms], slots=list(range(len(terms)))
        )
        template = repro.compile_template(program, backend="reference")
        angles = [t.coefficient for t in terms]
        bound = template.bind(angles)
        assert bound.circuit == repro.compile(terms, level=3).circuit
