"""Conjugation rules, tableau and stabilizer simulator tests.

Every rule is cross-checked against explicit matrix conjugation, which makes
these tests the ground truth for the phase conventions used by the Clifford
Extraction and Absorption modules.
"""

import numpy as np
import pytest

from repro.circuits.circuit import QuantumCircuit
from repro.circuits.gate import Gate
from repro.circuits.statevector import Statevector, circuit_unitary
from repro.clifford.conjugation import conjugate_pauli_by_circuit, conjugate_pauli_by_gate
from repro.clifford.stabilizer import StabilizerState
from repro.clifford.tableau import CliffordTableau
from repro.exceptions import CliffordError
from repro.paulis.pauli import PauliString

from tests.conftest import random_clifford_circuit, random_pauli


def _embed_gate_matrix(gate: Gate, num_qubits: int) -> np.ndarray:
    circuit = QuantumCircuit(num_qubits)
    circuit.append(gate)
    return circuit_unitary(circuit)


class TestSingleGateConjugation:
    @pytest.mark.parametrize("gate_name", ["i", "h", "s", "sdg", "x", "y", "z", "sx", "sxdg"])
    @pytest.mark.parametrize("letter", ["I", "X", "Y", "Z"])
    def test_single_qubit_rules_match_matrices(self, gate_name, letter):
        pauli = PauliString.from_label(letter)
        gate = Gate(gate_name, (0,))
        conjugated = conjugate_pauli_by_gate(pauli, gate)
        matrix = gate.matrix()
        expected = matrix @ pauli.to_matrix() @ matrix.conj().T
        assert np.allclose(conjugated.to_matrix(), expected)

    @pytest.mark.parametrize("gate_name", ["cx", "cz", "swap"])
    def test_two_qubit_rules_match_matrices(self, gate_name, rng):
        for _ in range(20):
            pauli = random_pauli(rng, 2)
            gate = Gate(gate_name, (0, 1))
            conjugated = conjugate_pauli_by_gate(pauli, gate)
            matrix = _embed_gate_matrix(gate, 2)
            expected = matrix @ pauli.to_matrix() @ matrix.conj().T
            assert np.allclose(conjugated.to_matrix(), expected)

    def test_cx_reversed_qubits(self, rng):
        for _ in range(10):
            pauli = random_pauli(rng, 2)
            gate = Gate("cx", (1, 0))
            conjugated = conjugate_pauli_by_gate(pauli, gate)
            matrix = _embed_gate_matrix(gate, 2)
            expected = matrix @ pauli.to_matrix() @ matrix.conj().T
            assert np.allclose(conjugated.to_matrix(), expected)

    def test_non_clifford_gate_rejected(self):
        with pytest.raises(CliffordError):
            conjugate_pauli_by_gate(
                PauliString.from_label("X"), Gate("rz", (0,), (0.2,))
            )

    def test_paper_table1_cnot_rules(self):
        """Reproduce Table I of the paper (signs omitted there)."""
        table = {
            "II": "II", "IX": "IX", "IY": "ZY", "IZ": "ZZ",
            "XI": "XX", "XX": "XI", "XY": "YZ", "XZ": "YY",
            "YI": "YX", "YX": "YI", "YY": "XZ", "YZ": "XY",
            "ZI": "ZI", "ZX": "ZX", "ZY": "IY", "ZZ": "IZ",
        }
        # Table I labels are written control-first; qubit 1 is the control.
        gate = Gate("cx", (1, 0))
        for source, expected in table.items():
            pauli = PauliString.from_label(source)
            conjugated = conjugate_pauli_by_gate(pauli, gate)
            assert conjugated.to_label(include_sign=False) == expected


class TestCircuitConjugation:
    def test_matches_matrix_conjugation(self, rng):
        for _ in range(15):
            num_qubits = int(rng.integers(1, 4))
            circuit = random_clifford_circuit(rng, num_qubits, 12)
            pauli = random_pauli(rng, num_qubits)
            conjugated = conjugate_pauli_by_circuit(pauli, circuit)
            unitary = circuit_unitary(circuit)
            expected = unitary @ pauli.to_matrix() @ unitary.conj().T
            assert np.allclose(conjugated.to_matrix(), expected)

    def test_empty_circuit_is_identity_map(self):
        pauli = PauliString.from_label("-XYZ")
        assert conjugate_pauli_by_circuit(pauli, QuantumCircuit(3)) == pauli


class TestCliffordTableau:
    def test_identity_tableau(self):
        tableau = CliffordTableau(3)
        assert tableau.is_identity()
        assert tableau.image_of_x(1).to_label() == "IXI"
        assert tableau.image_of_z(2).to_label() == "ZII"

    def test_tableau_matches_gatewise_conjugation(self, rng):
        for _ in range(15):
            num_qubits = int(rng.integers(1, 5))
            circuit = random_clifford_circuit(rng, num_qubits, 20)
            tableau = CliffordTableau.from_circuit(circuit)
            pauli = random_pauli(rng, num_qubits)
            assert tableau.conjugate(pauli) == conjugate_pauli_by_circuit(pauli, circuit)

    def test_tableau_matches_matrices(self, rng):
        for _ in range(10):
            num_qubits = int(rng.integers(1, 4))
            circuit = random_clifford_circuit(rng, num_qubits, 15)
            tableau = CliffordTableau.from_circuit(circuit)
            pauli = random_pauli(rng, num_qubits)
            unitary = circuit_unitary(circuit)
            expected = unitary @ pauli.to_matrix() @ unitary.conj().T
            assert np.allclose(tableau.conjugate(pauli).to_matrix(), expected)

    def test_append_gate_rejects_non_clifford(self):
        tableau = CliffordTableau(1)
        with pytest.raises(CliffordError):
            tableau.append_gate(Gate("rz", (0,), (0.1,)))

    def test_conjugate_size_mismatch(self):
        tableau = CliffordTableau(2)
        with pytest.raises(CliffordError):
            tableau.conjugate(PauliString.from_label("X"))

    def test_copy_is_independent(self):
        tableau = CliffordTableau(2)
        clone = tableau.copy()
        clone.append_gate(Gate("h", (0,)))
        assert tableau.is_identity()
        assert not clone.is_identity()

    def test_conjugation_preserves_commutation(self, rng):
        circuit = random_clifford_circuit(rng, 4, 25)
        tableau = CliffordTableau.from_circuit(circuit)
        for _ in range(20):
            first = random_pauli(rng, 4)
            second = random_pauli(rng, 4)
            assert first.commutes_with(second) == tableau.conjugate(first).commutes_with(
                tableau.conjugate(second)
            )


class TestStabilizerState:
    def test_initial_measurement_all_zero(self):
        state = StabilizerState(3, seed=1)
        assert state.measure_all() == "000"

    def test_x_gate_flips_outcome(self):
        state = StabilizerState(2, seed=1)
        state.apply_gate(Gate("x", (1,)))
        assert state.measure_all() == "10"

    def test_deterministic_cx(self):
        state = StabilizerState(2, seed=1)
        state.apply_gate(Gate("x", (0,)))
        state.apply_gate(Gate("cx", (0, 1)))
        assert state.measure_all() == "11"

    def test_bell_state_correlations(self):
        for seed in range(20):
            state = StabilizerState(2, seed=seed)
            circuit = QuantumCircuit(2)
            circuit.h(0).cx(0, 1)
            state.apply_circuit(circuit)
            outcome = state.measure_all()
            assert outcome in ("00", "11")

    def test_sampling_matches_statevector(self, rng):
        circuit = random_clifford_circuit(rng, 3, 15)
        probabilities = Statevector.from_circuit(circuit).probability_dict()
        counts = StabilizerState(3, seed=9).sample_counts(circuit, shots=600)
        sampled = {key: value / 600 for key, value in counts.items()}
        # Every sampled outcome must have non-zero true probability.
        for key in sampled:
            assert key in probabilities
        for key, probability in probabilities.items():
            assert abs(sampled.get(key, 0.0) - probability) < 0.15

    def test_non_clifford_gate_rejected(self):
        state = StabilizerState(1)
        with pytest.raises(CliffordError):
            state.apply_gate(Gate("rz", (0,), (0.3,)))
