"""Equivalence tests for the vectorized conjugation engine.

The legacy per-gate boolean path (repro.clifford.conjugation) is the ground
truth: both packed strategies — gate streaming over a PackedPauliTable and
the frozen-tableau PackedConjugator — must reproduce it bit-for-bit (x, z
AND phase) on randomized Cliffords, including registers wider than one
64-bit word.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuits.circuit import QuantumCircuit
from repro.clifford.conjugation import conjugate_pauli_by_circuit
from repro.clifford.engine import (
    ConjugationCache,
    PackedConjugator,
    conjugate_paulis_by_circuit,
    conjugate_table_by_circuit,
)
from repro.clifford.tableau import CliffordTableau
from repro.exceptions import CliffordError, PauliError
from repro.paulis.packed import PackedPauliTable
from repro.paulis.pauli import PauliString

from tests.conftest import random_clifford_circuit, random_pauli


class TestPackedCircuitConjugation:
    @pytest.mark.parametrize("num_qubits", [1, 3, 8, 63, 64, 65, 70])
    def test_gate_streaming_matches_legacy(self, rng, num_qubits):
        circuit = random_clifford_circuit(rng, num_qubits, 40)
        paulis = [random_pauli(rng, num_qubits) for _ in range(10)]
        legacy = [conjugate_pauli_by_circuit(pauli, circuit) for pauli in paulis]
        packed = conjugate_paulis_by_circuit(paulis, circuit)
        assert packed == legacy  # PauliString equality covers x, z and phase

    def test_copy_semantics(self, rng):
        circuit = random_clifford_circuit(rng, 4, 20)
        paulis = [random_pauli(rng, 4) for _ in range(5)]
        table = PackedPauliTable.from_paulis(paulis)
        before = table.copy()
        conjugate_table_by_circuit(table, circuit, copy=True)
        assert np.array_equal(table.x_words, before.x_words)
        conjugate_table_by_circuit(table, circuit, copy=False)
        assert not np.array_equal(table.phases, before.phases) or not np.array_equal(
            table.x_words, before.x_words
        )

    def test_circuit_size_mismatch_raises(self):
        table = PackedPauliTable.from_paulis([PauliString.from_label("XX")])
        with pytest.raises(PauliError):
            table.apply_circuit(QuantumCircuit(3))


class TestPackedConjugator:
    @pytest.mark.parametrize("num_qubits", [1, 4, 63, 64, 65, 70])
    def test_frozen_tableau_matches_legacy(self, rng, num_qubits):
        circuit = random_clifford_circuit(rng, num_qubits, 50)
        paulis = [random_pauli(rng, num_qubits) for _ in range(12)]
        legacy = [conjugate_pauli_by_circuit(pauli, circuit) for pauli in paulis]
        conjugator = PackedConjugator.from_circuit(circuit)
        batch = conjugator.conjugate_table(PackedPauliTable.from_paulis(paulis)).to_paulis()
        assert batch == legacy
        singles = [conjugator.conjugate(pauli) for pauli in paulis]
        assert singles == legacy

    def test_matches_tableau_conjugate(self, rng):
        for _ in range(10):
            num_qubits = int(rng.integers(1, 6))
            circuit = random_clifford_circuit(rng, num_qubits, 25)
            tableau = CliffordTableau.from_circuit(circuit)
            conjugator = PackedConjugator.from_tableau(tableau)
            pauli = random_pauli(rng, num_qubits)
            assert conjugator.conjugate(pauli) == tableau.conjugate(pauli)

    def test_snapshot_is_frozen(self, rng):
        tableau = CliffordTableau(2)
        conjugator = PackedConjugator.from_tableau(tableau)
        from repro.circuits.gate import Gate

        tableau.append_gate(Gate("h", (0,)))
        pauli = PauliString.from_label("IX")
        # The frozen snapshot still represents the identity map.
        assert conjugator.conjugate(pauli) == pauli
        assert tableau.conjugate(pauli) != pauli

    def test_size_mismatch_raises(self):
        conjugator = PackedConjugator.from_tableau(CliffordTableau(2))
        with pytest.raises(CliffordError):
            conjugator.conjugate(PauliString.from_label("XXX"))
        with pytest.raises(CliffordError):
            conjugator.conjugate_table(
                PackedPauliTable.from_paulis([PauliString.from_label("XXX")])
            )

    @settings(max_examples=25)
    @given(st.integers(min_value=0, max_value=3))
    def test_input_phase_is_preserved(self, phase):
        conjugator = PackedConjugator.from_tableau(CliffordTableau(3))
        pauli = PauliString.from_label("XYZ").multiply_phase(phase)
        assert conjugator.conjugate(pauli) == pauli


class TestBatchConjugationOnTableau:
    def test_conjugate_many_matches_singles(self, rng):
        circuit = random_clifford_circuit(rng, 6, 30)
        tableau = CliffordTableau.from_circuit(circuit)
        paulis = [random_pauli(rng, 6) for _ in range(15)]
        assert tableau.conjugate_many(paulis) == [tableau.conjugate(p) for p in paulis]

    def test_conjugate_many_empty(self):
        assert CliffordTableau(2).conjugate_many([]) == []


class TestConjugationCache:
    def test_identical_tableaus_share_a_conjugator(self, rng):
        cache = ConjugationCache()
        circuit = random_clifford_circuit(rng, 3, 15)
        first = CliffordTableau.from_circuit(circuit)
        second = CliffordTableau.from_circuit(circuit)
        assert cache.get(first) is cache.get(second)
        stats = cache.stats()
        assert stats == {"entries": 1, "hits": 1, "misses": 1}

    def test_different_tableaus_get_distinct_entries(self, rng):
        cache = ConjugationCache()
        first = CliffordTableau.from_circuit(random_clifford_circuit(rng, 3, 15))
        second = CliffordTableau(3)
        cache.get(first)
        cache.get(second)
        assert len(cache) == 2

    def test_cached_results_are_correct(self, rng):
        cache = ConjugationCache()
        circuit = random_clifford_circuit(rng, 4, 20)
        tableau = CliffordTableau.from_circuit(circuit)
        conjugator = cache.get(tableau)
        pauli = random_pauli(rng, 4)
        assert conjugator.conjugate(pauli) == conjugate_pauli_by_circuit(pauli, circuit)


class TestCircuitValidationFix:
    """conjugate_pauli_by_circuit must reject mismatched registers."""

    def test_mismatched_circuit_raises_pauli_error(self):
        pauli = PauliString.from_label("XY")
        with pytest.raises(PauliError):
            conjugate_pauli_by_circuit(pauli, QuantumCircuit(3))

    def test_mismatched_gate_raises_pauli_error(self):
        from repro.circuits.gate import Gate
        from repro.clifford.conjugation import conjugate_pauli_by_gate

        with pytest.raises(PauliError):
            conjugate_pauli_by_gate(PauliString.from_label("X"), Gate("h", (2,)))

    def test_matching_circuit_still_works(self):
        pauli = PauliString.from_label("-XYZ")
        assert conjugate_pauli_by_circuit(pauli, QuantumCircuit(3)) == pauli
