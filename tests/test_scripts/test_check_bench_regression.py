"""Tests for scripts/check_bench_regression.py, including the strict mode."""

import json
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[2]
SCRIPT = REPO_ROOT / "scripts" / "check_bench_regression.py"

BASELINE = {
    "schema": "repro-bench-throughput/v1",
    "workloads": {
        "toy": {
            "packed_terms_per_sec": 1000.0,
            "extraction_terms_per_sec": 500.0,
            "peephole_gates_per_sec": 2000.0,
            "speedup": 6.25,
        }
    },
}

CURRENT_OK = {
    "schema": "repro-bench-throughput/v1",
    "workloads": {
        "toy": {
            "packed_terms_per_sec": 1200.0,
            "extraction_terms_per_sec": 600.0,
            "peephole_gates_per_sec": 2500.0,
            "speedup": 8.0,
        }
    },
}


def _run(tmp_path, baseline, current, *extra):
    baseline_path = tmp_path / "baseline.json"
    current_path = tmp_path / "current.json"
    baseline_path.write_text(json.dumps(baseline))
    current_path.write_text(json.dumps(current))
    return subprocess.run(
        [sys.executable, str(SCRIPT), str(baseline_path), str(current_path), *extra],
        capture_output=True,
        text=True,
    )


class TestRegressionCheck:
    def test_passes_when_above_floors(self, tmp_path):
        result = _run(tmp_path, BASELINE, CURRENT_OK)
        assert result.returncode == 0, result.stdout + result.stderr

    def test_fails_on_regression(self, tmp_path):
        bad = json.loads(json.dumps(CURRENT_OK))
        bad["workloads"]["toy"]["peephole_gates_per_sec"] = 100.0
        result = _run(tmp_path, BASELINE, bad)
        assert result.returncode == 1
        assert "REGRESSION" in result.stdout

    def test_tolerance_allows_small_drop(self, tmp_path):
        slightly_low = json.loads(json.dumps(CURRENT_OK))
        slightly_low["workloads"]["toy"]["packed_terms_per_sec"] = 850.0  # -15%
        result = _run(tmp_path, BASELINE, slightly_low, "--tolerance", "0.2")
        assert result.returncode == 0

    def test_missing_workload_fails(self, tmp_path):
        result = _run(tmp_path, BASELINE, {"workloads": {}})
        assert result.returncode == 1
        assert "MISSING" in result.stdout


class TestStrictMode:
    def test_strict_fails_when_floored_metric_missing_from_output(self, tmp_path):
        dropped = json.loads(json.dumps(CURRENT_OK))
        del dropped["workloads"]["toy"]["peephole_gates_per_sec"]
        result = _run(tmp_path, BASELINE, dropped, "--strict")
        assert result.returncode == 1
        assert "NOT MEASURED" in result.stdout

    def test_strict_fails_when_gated_metric_has_no_floor(self, tmp_path):
        unfloored = json.loads(json.dumps(BASELINE))
        del unfloored["workloads"]["toy"]["peephole_gates_per_sec"]
        result = _run(tmp_path, unfloored, CURRENT_OK, "--strict")
        assert result.returncode == 1
        assert "NO FLOOR" in result.stdout

    def test_non_strict_keeps_legacy_behaviour_for_unfloored_metric(self, tmp_path):
        # without --strict a missing floor silently passes (the gap strict
        # mode exists to close)
        unfloored = json.loads(json.dumps(BASELINE))
        del unfloored["workloads"]["toy"]["peephole_gates_per_sec"]
        result = _run(tmp_path, unfloored, CURRENT_OK)
        assert result.returncode == 0

    def test_strict_passes_on_complete_reports(self, tmp_path):
        result = _run(tmp_path, BASELINE, CURRENT_OK, "--strict")
        assert result.returncode == 0

    def test_committed_baselines_have_every_gated_floor(self):
        # the committed floors must stay strict-clean: every METRICS entry
        # needs a floor in both tier baselines, and the service/parametric
        # blocks need every gated floor
        sys.path.insert(0, str(REPO_ROOT / "scripts"))
        try:
            from check_bench_regression import METRICS, PARAMETRIC_METRICS, SERVICE_METRICS
        finally:
            sys.path.pop(0)
        for tier_file in (
            "bench_throughput_baseline.json",
            "bench_throughput_baseline_medium.json",
        ):
            committed = json.loads(
                (REPO_ROOT / "benchmarks" / "baselines" / tier_file).read_text()
            )
            for workload, entry in committed["workloads"].items():
                for metric in METRICS:
                    assert metric in entry, f"{tier_file}: {workload} lacks {metric}"
            for block, metrics in (
                ("service", SERVICE_METRICS),
                ("parametric", PARAMETRIC_METRICS),
            ):
                assert block in committed, f"{tier_file} lacks the {block} block"
                for metric in metrics:
                    assert metric in committed[block], f"{tier_file}: {block} lacks {metric}"


SERVICE_BASELINE = dict(
    BASELINE,
    service={
        "warm_hit_speedup": 100.0,
        "requests_per_sec": 50.0,
        "bind_requests_per_sec": 150.0,
    },
)
SERVICE_CURRENT = dict(
    CURRENT_OK,
    service={
        "warm_hit_speedup": 5000.0,
        "requests_per_sec": 200.0,
        "bind_requests_per_sec": 400.0,
    },
)


class TestServiceGate:
    def test_passes_above_service_floors(self, tmp_path):
        result = _run(tmp_path, SERVICE_BASELINE, SERVICE_CURRENT, "--strict")
        assert result.returncode == 0, result.stdout + result.stderr

    def test_fails_on_service_regression(self, tmp_path):
        slow = json.loads(json.dumps(SERVICE_CURRENT))
        slow["service"]["warm_hit_speedup"] = 3.0
        result = _run(tmp_path, SERVICE_BASELINE, slow)
        assert result.returncode == 1
        assert "REGRESSION" in result.stdout

    def test_reports_without_service_blocks_still_pass(self, tmp_path):
        # pre-service baselines stay comparable, strict or not
        result = _run(tmp_path, BASELINE, CURRENT_OK, "--strict")
        assert result.returncode == 0

    def test_strict_fails_when_service_block_vanishes(self, tmp_path):
        result = _run(tmp_path, SERVICE_BASELINE, CURRENT_OK, "--strict")
        assert result.returncode == 1
        assert "MISSING" in result.stdout

    def test_strict_fails_when_service_has_no_floor(self, tmp_path):
        result = _run(tmp_path, BASELINE, SERVICE_CURRENT, "--strict")
        assert result.returncode == 1
        assert "NO FLOOR" in result.stdout

    def test_strict_fails_when_one_service_metric_unmeasured(self, tmp_path):
        partial = json.loads(json.dumps(SERVICE_CURRENT))
        del partial["service"]["requests_per_sec"]
        result = _run(tmp_path, SERVICE_BASELINE, partial, "--strict")
        assert result.returncode == 1
        assert "NOT MEASURED" in result.stdout


PARAMETRIC_BASELINE = dict(
    SERVICE_BASELINE,
    parametric={"bind_speedup": 100.0, "bind_requests_per_sec": 150.0},
)
PARAMETRIC_CURRENT = dict(
    SERVICE_CURRENT,
    parametric={"bind_speedup": 150.0, "bind_requests_per_sec": 400.0},
)


class TestParametricGate:
    def test_passes_above_parametric_floors(self, tmp_path):
        result = _run(tmp_path, PARAMETRIC_BASELINE, PARAMETRIC_CURRENT, "--strict")
        assert result.returncode == 0, result.stdout + result.stderr

    def test_fails_on_bind_speedup_regression(self, tmp_path):
        slow = json.loads(json.dumps(PARAMETRIC_CURRENT))
        slow["parametric"]["bind_speedup"] = 10.0
        result = _run(tmp_path, PARAMETRIC_BASELINE, slow)
        assert result.returncode == 1
        assert "REGRESSION" in result.stdout

    def test_strict_fails_when_parametric_block_vanishes(self, tmp_path):
        result = _run(tmp_path, PARAMETRIC_BASELINE, SERVICE_CURRENT, "--strict")
        assert result.returncode == 1
        assert "MISSING" in result.stdout

    def test_reports_without_parametric_blocks_still_pass(self, tmp_path):
        # pre-parametric baselines stay comparable, strict or not
        result = _run(tmp_path, SERVICE_BASELINE, SERVICE_CURRENT, "--strict")
        assert result.returncode == 0
