"""Tests for the benchmark workload generators."""

import numpy as np
import pytest

from repro.exceptions import WorkloadError
from repro.paulis.pauli import PauliString
from repro.workloads.fermion import (
    ComplexPauliSum,
    FermionicOperator,
    anti_hermitian_excitation,
    jordan_wigner,
)
from repro.workloads.molecules import (
    MOLECULE_SPECIFICATIONS,
    molecular_hamiltonian,
    synthetic_electronic_hamiltonian,
)
from repro.workloads.qaoa import (
    cut_value,
    labs_energy,
    labs_hamiltonian,
    labs_qaoa_terms,
    maxcut_hamiltonian,
    maxcut_qaoa_terms,
    random_graph,
    regular_graph,
)
from repro.workloads.registry import benchmark_names, get_benchmark, list_benchmarks
from repro.workloads.uccsd import uccsd_ansatz_terms, uccsd_excitations


class TestJordanWigner:
    def test_single_annihilation_operator(self):
        result = jordan_wigner(FermionicOperator.annihilation(0), 2)
        labels = {pauli.to_label(include_sign=False) for pauli, _ in result.items()}
        assert labels == {"IX", "IY"}

    def test_creation_has_z_string(self):
        result = jordan_wigner(FermionicOperator.creation(2), 3)
        for pauli, _ in result.items():
            assert pauli.letter(0) == "Z"
            assert pauli.letter(1) == "Z"
            assert pauli.letter(2) in ("X", "Y")

    def test_number_operator_matches_matrix(self):
        """a†_0 a_0 = (I - Z_0) / 2."""
        operator = FermionicOperator.creation(0) * FermionicOperator.annihilation(0)
        result = jordan_wigner(operator, 1)
        matrix = sum(
            coefficient * pauli.to_matrix() for pauli, coefficient in result.items()
        )
        assert np.allclose(matrix, np.array([[0, 0], [0, 1]], dtype=complex))

    def test_anticommutation_relation(self):
        """{a_0, a†_0} = 1 under the JW encoding."""
        a = jordan_wigner(FermionicOperator.annihilation(0), 2)
        adag = jordan_wigner(FermionicOperator.creation(0), 2)
        anticommutator = a * adag + adag * a
        items = anticommutator.items()
        assert len(items) == 1
        pauli, coefficient = items[0]
        assert pauli.is_identity()
        assert coefficient == pytest.approx(1.0)

    def test_excitation_is_anti_hermitian(self):
        generator = anti_hermitian_excitation([2], [0], 3)
        matrix = sum(c * p.to_matrix() for p, c in generator.items())
        assert np.allclose(matrix, -matrix.conj().T)

    def test_excitation_with_complex_amplitude(self):
        generator = anti_hermitian_excitation([2], [0], 3, amplitude=0.3 + 0.4j)
        matrix = sum(c * p.to_matrix() for p, c in generator.items())
        assert np.allclose(matrix, -matrix.conj().T)
        assert len(generator.items()) == 4

    def test_mode_out_of_range(self):
        with pytest.raises(WorkloadError):
            jordan_wigner(FermionicOperator.annihilation(5), 3)

    def test_complex_sum_to_hermitian_rejects_imaginary(self):
        accumulator = ComplexPauliSum(1)
        accumulator.add_pauli(PauliString.from_label("X"), 1j)
        with pytest.raises(WorkloadError):
            accumulator.to_hermitian_sum()


class TestUccsd:
    def test_excitation_counts(self):
        assert len(uccsd_excitations(2, 4)) == 3
        assert len(uccsd_excitations(2, 6)) == 8

    def test_term_counts_match_paper(self):
        assert len(uccsd_ansatz_terms(2, 4)) == 24
        assert len(uccsd_ansatz_terms(2, 6)) == 80

    def test_real_amplitudes_halve_terms(self):
        assert len(uccsd_ansatz_terms(2, 4, complex_amplitudes=False)) == 12

    def test_terms_are_hermitian_paulis(self):
        for term in uccsd_ansatz_terms(2, 4):
            assert term.pauli.is_hermitian()
            assert not term.pauli.is_identity()

    def test_deterministic_for_fixed_seed(self):
        first = uccsd_ansatz_terms(2, 4, seed=3)
        second = uccsd_ansatz_terms(2, 4, seed=3)
        assert [t.pauli.to_label() for t in first] == [t.pauli.to_label() for t in second]
        assert [t.coefficient for t in first] == [t.coefficient for t in second]

    def test_invalid_specifications(self):
        with pytest.raises(WorkloadError):
            uccsd_excitations(3, 6)
        with pytest.raises(WorkloadError):
            uccsd_excitations(2, 5)
        with pytest.raises(WorkloadError):
            uccsd_excitations(6, 4)

    def test_wrong_parameter_count(self):
        with pytest.raises(WorkloadError):
            uccsd_ansatz_terms(2, 4, parameters=[0.1])


class TestMolecules:
    @pytest.mark.parametrize("molecule", sorted(MOLECULE_SPECIFICATIONS))
    def test_published_sizes(self, molecule):
        num_qubits, num_terms = MOLECULE_SPECIFICATIONS[molecule]
        hamiltonian = molecular_hamiltonian(molecule)
        assert hamiltonian.num_qubits == num_qubits
        assert len(hamiltonian) == num_terms

    def test_terms_are_unique(self):
        hamiltonian = molecular_hamiltonian("LiH")
        labels = hamiltonian.labels()
        assert len(labels) == len(set(labels))

    def test_deterministic(self):
        assert molecular_hamiltonian("H2O").labels() == molecular_hamiltonian("H2O").labels()

    def test_unknown_molecule(self):
        with pytest.raises(WorkloadError):
            molecular_hamiltonian("caffeine")

    def test_synthetic_hamiltonian_custom_size(self):
        hamiltonian = synthetic_electronic_hamiltonian(5, 40)
        assert hamiltonian.num_qubits == 5
        assert len(hamiltonian) == 40

    def test_hamiltonian_is_hermitian_structure(self):
        for term in molecular_hamiltonian("LiH"):
            assert term.pauli.is_hermitian()


class TestQaoa:
    def test_regular_graph_properties(self):
        graph = regular_graph(10, 4, seed=1)
        assert graph.number_of_nodes() == 10
        assert all(degree == 4 for _, degree in graph.degree)

    def test_random_graph_edge_count(self):
        graph = random_graph(10, 12, seed=1)
        assert graph.number_of_edges() == 12

    def test_invalid_graph_specifications(self):
        with pytest.raises(WorkloadError):
            regular_graph(5, 5)
        with pytest.raises(WorkloadError):
            random_graph(4, 100)

    def test_maxcut_terms_structure(self):
        graph = regular_graph(8, 4, seed=2)
        terms = maxcut_qaoa_terms(graph)
        assert len(terms) == graph.number_of_edges() + 8
        problem = terms[: graph.number_of_edges()]
        assert all(set(t.pauli.letters()) <= {"I", "Z"} for t in problem)
        mixer = terms[graph.number_of_edges() :]
        assert all(t.pauli.weight == 1 and "X" in t.pauli.letters() for t in mixer)

    def test_maxcut_hamiltonian(self):
        graph = regular_graph(6, 2, seed=3)
        hamiltonian = maxcut_hamiltonian(graph)
        assert len(hamiltonian) == graph.number_of_edges()

    def test_cut_value(self):
        graph = random_graph(3, 3, seed=5)
        assert cut_value(graph, "000") == 0
        assert cut_value(graph, "001") == sum(1 for e in graph.edges if 0 in e)

    def test_labs_term_counts_match_paper(self):
        assert len(labs_qaoa_terms(10)) == 80
        assert len(labs_qaoa_terms(15)) == 267
        assert len(labs_qaoa_terms(20)) == 635

    def test_labs_hamiltonian_is_z_type(self):
        for term in labs_hamiltonian(8):
            assert set(term.pauli.letters()) <= {"I", "Z"}
            assert term.pauli.weight in (2, 4)

    def test_labs_energy_matches_hamiltonian(self):
        """<z|H|z> + constant = sidelobe energy for every basis state."""
        num_qubits = 5
        hamiltonian = labs_hamiltonian(num_qubits)
        # The dropped constant is sum_k (n - k) for the i == j diagonal terms
        # plus the contributions where index collisions cancel all spins.
        for value in range(2**num_qubits):
            bitstring = format(value, f"0{num_qubits}b")
            spins = {q: 1 if bitstring[num_qubits - 1 - q] == "0" else -1 for q in range(num_qubits)}
            classical = sum(
                term.coefficient
                * np.prod([spins[q] for q in term.pauli.support])
                for term in hamiltonian
            )
            offset = labs_energy(bitstring) - classical
            if value == 0:
                constant = offset
            assert offset == pytest.approx(constant)

    def test_multi_layer_qaoa(self):
        graph = regular_graph(6, 2, seed=3)
        single = maxcut_qaoa_terms(graph, layers=1)
        double = maxcut_qaoa_terms(graph, layers=2)
        assert len(double) == 2 * len(single)


class TestRegistry:
    def test_nineteen_benchmarks(self):
        assert len(list_benchmarks()) == 19

    def test_lookup_by_name(self):
        benchmark = get_benchmark("LABS-(n10)")
        assert benchmark.num_qubits == 10
        assert benchmark.measurement == "probabilities"

    def test_unknown_benchmark(self):
        with pytest.raises(WorkloadError):
            get_benchmark("nope")

    def test_category_filter(self):
        assert len(list_benchmarks("UCCSD")) == 6
        assert len(list_benchmarks("QAOA MaxCut")) == 7

    def test_small_benchmarks_resolve(self):
        from repro.workloads.registry import SMALL_BENCHMARKS

        for name in SMALL_BENCHMARKS:
            benchmark = get_benchmark(name)
            terms = benchmark.terms()
            assert terms
            assert terms[0].num_qubits == benchmark.num_qubits

    def test_pauli_counts_match_paper_for_qaoa(self):
        for name in ["LABS-(n10)", "LABS-(n15)", "MaxCut-(n15, r4)", "MaxCut-(n20, r8)"]:
            benchmark = get_benchmark(name)
            assert len(benchmark.terms()) == benchmark.paper_num_paulis

    def test_chemistry_benchmark_has_observables(self):
        benchmark = get_benchmark("LiH")
        observables = benchmark.observables()
        assert observables.num_qubits == 6

    def test_qaoa_benchmark_has_no_observables(self):
        with pytest.raises(WorkloadError):
            get_benchmark("MaxCut-(n15, r4)").observables()

    def test_names_listing(self):
        assert "UCC-(2,4)" in benchmark_names()
