"""Tests for the peephole optimizer (the Qiskit-O3 stand-in)."""

import math

import pytest

from repro.circuits.circuit import QuantumCircuit
from repro.circuits.gate import Gate
from repro.circuits.statevector import circuits_equivalent
from repro.transpile.peephole import gates_commute, peephole_optimize

from tests.conftest import random_clifford_circuit, random_pauli_terms


class TestGatesCommute:
    def test_disjoint_qubits(self):
        assert gates_commute(Gate("h", (0,)), Gate("x", (1,)))

    def test_diagonal_gates(self):
        assert gates_commute(Gate("rz", (0,), (0.3,)), Gate("cz", (0, 1)))

    def test_cx_with_rz_on_control(self):
        assert gates_commute(Gate("cx", (0, 1)), Gate("rz", (0,), (0.4,)))

    def test_cx_with_x_on_target(self):
        assert gates_commute(Gate("cx", (0, 1)), Gate("x", (1,)))

    def test_cx_with_h_on_control_does_not_commute(self):
        assert not gates_commute(Gate("cx", (0, 1)), Gate("h", (0,)))

    def test_cx_sharing_control(self):
        assert gates_commute(Gate("cx", (0, 1)), Gate("cx", (0, 2)))

    def test_cx_sharing_target(self):
        assert gates_commute(Gate("cx", (0, 2)), Gate("cx", (1, 2)))

    def test_cx_chained_do_not_commute(self):
        assert not gates_commute(Gate("cx", (0, 1)), Gate("cx", (1, 2)))


class TestPeephole:
    def test_adjacent_hadamards_cancel(self):
        circuit = QuantumCircuit(1)
        circuit.h(0).h(0)
        assert len(peephole_optimize(circuit)) == 0

    def test_adjacent_cnots_cancel(self):
        circuit = QuantumCircuit(2)
        circuit.cx(0, 1).cx(0, 1)
        assert len(peephole_optimize(circuit)) == 0

    def test_s_sdg_cancel(self):
        circuit = QuantumCircuit(1)
        circuit.s(0).sdg(0)
        assert len(peephole_optimize(circuit)) == 0

    def test_cnot_cancellation_through_commuting_rz(self):
        circuit = QuantumCircuit(2)
        circuit.cx(0, 1).rz(0.5, 0).cx(0, 1)
        optimized = peephole_optimize(circuit)
        assert optimized.cx_count() == 0
        assert optimized.count_ops()["rz"] == 1

    def test_cnot_not_cancelled_through_blocking_gate(self):
        circuit = QuantumCircuit(2)
        circuit.cx(0, 1).h(1).cx(0, 1)
        optimized = peephole_optimize(circuit)
        assert optimized.cx_count() == 2

    def test_rotation_merging(self):
        circuit = QuantumCircuit(1)
        circuit.rz(0.3, 0).rz(0.4, 0)
        optimized = peephole_optimize(circuit)
        assert len(optimized) == 1
        assert optimized.gates[0].params[0] == pytest.approx(0.7)

    def test_opposite_rotations_cancel(self):
        circuit = QuantumCircuit(1)
        circuit.rz(0.3, 0).rz(-0.3, 0)
        assert len(peephole_optimize(circuit)) == 0

    def test_rotation_merging_through_commuting_cx_control(self):
        circuit = QuantumCircuit(2)
        circuit.rz(0.2, 0).cx(0, 1).rz(0.5, 0)
        optimized = peephole_optimize(circuit)
        assert optimized.count_ops()["rz"] == 1

    def test_identity_gates_removed(self):
        circuit = QuantumCircuit(1)
        circuit.i(0).h(0).i(0)
        assert len(peephole_optimize(circuit)) == 1

    def test_preserves_unitary_on_random_clifford(self, rng):
        for _ in range(10):
            circuit = random_clifford_circuit(rng, 3, 20)
            optimized = peephole_optimize(circuit)
            assert circuits_equivalent(circuit, optimized)
            assert len(optimized) <= len(circuit)

    def test_preserves_unitary_on_trotter_circuits(self, rng):
        from repro.synthesis.trotter import synthesize_trotter_circuit

        for _ in range(5):
            terms = random_pauli_terms(rng, 3, 5)
            circuit = synthesize_trotter_circuit(terms)
            optimized = peephole_optimize(circuit)
            assert circuits_equivalent(circuit, optimized)

    def test_trotter_adjacent_identical_blocks_shrink(self):
        from repro.paulis.term import PauliTerm
        from repro.synthesis.trotter import synthesize_trotter_circuit

        terms = [PauliTerm.from_label("ZZZ", 0.3), PauliTerm.from_label("ZZZ", 0.5)]
        circuit = synthesize_trotter_circuit(terms)
        optimized = peephole_optimize(circuit)
        # The mirrored trees between the two identical blocks cancel entirely
        # and the two rotations merge.
        assert optimized.cx_count() == 4
        assert optimized.count_ops()["rz"] == 1


class TestSymmetricGateMatching:
    """rzz/cz/swap act on unordered qubit pairs: reversed listings must match."""

    def test_reversed_cz_pair_cancels(self):
        circuit = QuantumCircuit(2)
        circuit.cz(0, 1).cz(1, 0)
        assert len(peephole_optimize(circuit)) == 0

    def test_reversed_swap_pair_cancels(self):
        circuit = QuantumCircuit(2)
        circuit.swap(0, 1).swap(1, 0)
        assert len(peephole_optimize(circuit)) == 0

    def test_reversed_rzz_rotations_merge(self):
        circuit = QuantumCircuit(2)
        circuit.rzz(0.3, 0, 1).rzz(0.4, 1, 0)
        optimized = peephole_optimize(circuit)
        assert len(optimized) == 1
        assert optimized.gates[0].params[0] == pytest.approx(0.7)
        assert circuits_equivalent(circuit, optimized)

    def test_reversed_opposite_rzz_cancel(self):
        circuit = QuantumCircuit(2)
        circuit.rzz(0.3, 0, 1).rzz(-0.3, 1, 0)
        assert len(peephole_optimize(circuit)) == 0

    def test_reversed_cx_does_not_cancel(self):
        # CX is direction-sensitive: cx(0,1) cx(1,0) is NOT the identity.
        circuit = QuantumCircuit(2)
        circuit.cx(0, 1).cx(1, 0)
        optimized = peephole_optimize(circuit)
        assert optimized.cx_count() == 2
        assert circuits_equivalent(circuit, optimized)

    def test_symmetric_cancellation_preserves_unitary(self):
        circuit = QuantumCircuit(3)
        circuit.h(0).cz(1, 2).rz(0.2, 0).cz(2, 1).rzz(0.5, 0, 2).rzz(0.25, 2, 0)
        optimized = peephole_optimize(circuit)
        assert circuits_equivalent(circuit, optimized)
        assert len(optimized) < len(circuit)
