"""Tests for coupling maps and the SWAP-insertion router."""

import pytest

from repro.circuits.circuit import QuantumCircuit
from repro.exceptions import RoutingError
from repro.transpile.coupling import CouplingMap, bfs_distance
from repro.transpile.routing import route_circuit

from tests.conftest import random_pauli_terms


class TestCouplingMap:
    def test_fully_connected(self):
        coupling = CouplingMap.fully_connected(4)
        assert len(coupling.edges) == 6
        assert coupling.are_connected(0, 3)

    def test_line(self):
        coupling = CouplingMap.line(5)
        assert coupling.distance(0, 4) == 4
        assert coupling.neighbors(2) == [1, 3]

    def test_ring(self):
        coupling = CouplingMap.ring(6)
        assert coupling.distance(0, 3) == 3
        assert coupling.distance(0, 5) == 1

    def test_grid(self):
        coupling = CouplingMap.grid(3, 3)
        assert coupling.num_qubits == 9
        assert coupling.are_connected(0, 1)
        assert coupling.are_connected(0, 3)
        assert not coupling.are_connected(0, 4)

    def test_sycamore_size(self):
        coupling = CouplingMap.sycamore()
        assert coupling.num_qubits == 64
        assert coupling.is_connected_graph()

    def test_manhattan_size_and_sparsity(self):
        coupling = CouplingMap.ibm_manhattan()
        assert coupling.num_qubits == 65
        assert coupling.is_connected_graph()
        # Heavy-hex lattices have maximum degree 3.
        assert max(len(coupling.neighbors(q)) for q in range(65)) <= 3

    def test_invalid_edge(self):
        with pytest.raises(RoutingError):
            CouplingMap(2, [(0, 5)])

    def test_self_loop_rejected(self):
        with pytest.raises(RoutingError):
            CouplingMap(2, [(1, 1)])

    def test_shortest_path(self):
        coupling = CouplingMap.line(4)
        assert coupling.shortest_path(0, 3) == [0, 1, 2, 3]

    def test_bfs_distance(self):
        distances = bfs_distance([(0, 1), (1, 2)], 4, 0)
        assert distances == [0, 1, 2, -1]


class TestRouting:
    def _bell_pair_far_apart(self):
        circuit = QuantumCircuit(4)
        circuit.h(0).cx(0, 3)
        return circuit

    def test_already_mapped_circuit_unchanged(self):
        coupling = CouplingMap.line(3)
        circuit = QuantumCircuit(3)
        circuit.cx(0, 1).cx(1, 2)
        result = route_circuit(circuit, coupling, initial_layout="trivial")
        assert result.swap_count == 0
        assert result.circuit.cx_count() == 2

    def test_swaps_inserted_on_line(self):
        coupling = CouplingMap.line(4)
        result = route_circuit(self._bell_pair_far_apart(), coupling, initial_layout="trivial")
        assert result.swap_count >= 1
        # Every two-qubit gate must respect the coupling graph.
        for gate in result.circuit:
            if gate.num_qubits == 2:
                assert coupling.are_connected(*gate.qubits)

    def test_greedy_layout_reduces_swaps(self):
        coupling = CouplingMap.line(4)
        trivial = route_circuit(self._bell_pair_far_apart(), coupling, initial_layout="trivial")
        greedy = route_circuit(self._bell_pair_far_apart(), coupling, initial_layout="greedy")
        assert greedy.swap_count <= trivial.swap_count

    def test_decompose_swaps(self):
        coupling = CouplingMap.line(4)
        result = route_circuit(
            self._bell_pair_far_apart(), coupling, initial_layout="trivial", decompose_swaps=True
        )
        assert "swap" not in result.circuit.count_ops()

    def test_explicit_layout(self):
        coupling = CouplingMap.line(4)
        layout = {0: 1, 1: 0, 2: 2, 3: 3}
        result = route_circuit(self._bell_pair_far_apart(), coupling, initial_layout=layout)
        assert result.initial_layout == layout

    def test_duplicate_layout_rejected(self):
        coupling = CouplingMap.line(3)
        circuit = QuantumCircuit(2)
        circuit.cx(0, 1)
        with pytest.raises(RoutingError):
            route_circuit(circuit, coupling, initial_layout={0: 1, 1: 1})

    def test_too_many_qubits_rejected(self):
        coupling = CouplingMap.line(2)
        circuit = QuantumCircuit(3)
        circuit.cx(0, 2)
        with pytest.raises(RoutingError):
            route_circuit(circuit, coupling)

    def test_unknown_strategy_rejected(self):
        coupling = CouplingMap.line(2)
        circuit = QuantumCircuit(2)
        with pytest.raises(RoutingError):
            route_circuit(circuit, coupling, initial_layout="bogus")

    def test_routed_respects_coupling_for_trotter(self, rng):
        from repro.synthesis.trotter import synthesize_trotter_circuit

        coupling = CouplingMap.grid(2, 3)
        terms = random_pauli_terms(rng, 5, 6)
        circuit = synthesize_trotter_circuit(terms)
        result = route_circuit(circuit, coupling)
        for gate in result.circuit:
            if gate.num_qubits == 2:
                assert coupling.are_connected(*gate.qubits)

    def test_routing_preserves_semantics_with_trivial_layout(self):
        """Routed circuit equals original up to the tracked final permutation."""
        from repro.circuits.statevector import Statevector

        coupling = CouplingMap.line(3)
        circuit = QuantumCircuit(3)
        circuit.h(0).cx(0, 2).x(1)
        result = route_circuit(circuit, coupling, initial_layout="trivial")
        original_probabilities = Statevector.from_circuit(circuit).probability_dict()
        routed_probabilities = Statevector.from_circuit(result.circuit).probability_dict()

        def unpermute(bitstring: str) -> str:
            bits_physical = {2 - i: bit for i, bit in enumerate(bitstring)}
            logical_bits = {
                logical: bits_physical[physical]
                for logical, physical in result.final_layout.items()
            }
            return "".join(logical_bits[q] for q in sorted(logical_bits, reverse=True))

        remapped = {}
        for key, value in routed_probabilities.items():
            remapped[unpermute(key)] = remapped.get(unpermute(key), 0.0) + value
        for key, value in original_probabilities.items():
            assert remapped.get(key, 0.0) == pytest.approx(value, abs=1e-9)
