"""Streaming-vs-legacy peephole equivalence suite.

The streaming wire-indexed engine
(:mod:`repro.transpile.wire_optimizer`) must reach the same rewrite fixpoint
as the iterated legacy sweeps (:func:`repro.transpile.peephole.peephole_optimize`,
the unoptimized ground truth): identical gate count and a statevector match
up to global phase, on randomized gate tails covering symmetric gates with
reversed qubit order, near-zero and >2*pi merged angles, and fixpoints the
legacy default iteration cap cannot reach.
"""

import math

import pytest

import repro
from repro.circuits.circuit import QuantumCircuit
from repro.circuits.gate import Gate
from repro.circuits.statevector import circuits_equivalent
from repro.compiler.passes import CliffordExtraction, GroupCommuting, Peephole
from repro.compiler.pipeline import Pipeline
from repro.core.extraction import CliffordExtractor
from repro.exceptions import CircuitError, CompilerError
from repro.synthesis.trotter import synthesize_trotter_circuit
from repro.transpile.peephole import peephole_optimize
from repro.transpile.wire_optimizer import (
    GateStreamOptimizer,
    streaming_peephole_optimize,
)

from tests.conftest import random_pauli_terms

_FIXED_1Q = ["h", "x", "y", "z", "s", "sdg", "sx", "sxdg"]
_FIXED_2Q = ["cx", "cz", "swap"]
_ROT_1Q = ["rz", "rx", "ry"]

#: a fixpoint beyond any case this suite generates; the legacy default cap
#: of 20 is deliberately NOT used — the streaming engine has no cap at all
_LEGACY_FIXPOINT_ITERATIONS = 128


def _random_tail(rng, num_qubits: int, num_gates: int) -> QuantumCircuit:
    """A random gate tail stressing every rewrite rule at once."""
    circuit = QuantumCircuit(num_qubits)
    angle_pool = [0.0, 1e-13, 7.5, 2.0 * math.pi + 0.25, -9.0]
    for _ in range(num_gates):
        draw = rng.random()
        if draw < 0.35:
            circuit.append(Gate(str(rng.choice(_FIXED_1Q)), (int(rng.integers(num_qubits)),)))
        elif draw < 0.6:
            pair = rng.choice(num_qubits, size=2, replace=False)
            circuit.append(Gate(str(rng.choice(_FIXED_2Q)), (int(pair[0]), int(pair[1]))))
        elif draw < 0.85:
            angle = (
                float(rng.choice(angle_pool))
                if rng.random() < 0.3
                else float(rng.uniform(-8.0, 8.0))
            )
            circuit.append(Gate(str(rng.choice(_ROT_1Q)), (int(rng.integers(num_qubits)),), (angle,)))
        else:
            pair = rng.choice(num_qubits, size=2, replace=False)
            circuit.append(Gate("rzz", (int(pair[0]), int(pair[1])), (float(rng.uniform(-8.0, 8.0)),)))
        if rng.random() < 0.05:
            circuit.append(Gate("i", (int(rng.integers(num_qubits)),)))
    return circuit


def _assert_matches_legacy(circuit: QuantumCircuit) -> QuantumCircuit:
    legacy = peephole_optimize(circuit, max_iterations=_LEGACY_FIXPOINT_ITERATIONS)
    streamed = streaming_peephole_optimize(circuit)
    assert len(streamed) == len(legacy), (
        f"gate count diverged: streaming {len(streamed)} vs legacy {len(legacy)}\n"
        f"input: {list(circuit)}"
    )
    assert circuits_equivalent(streamed, legacy, tolerance=1e-6)
    return streamed


class TestRandomizedEquivalence:
    def test_random_gate_tails(self, rng):
        for _ in range(60):
            num_qubits = int(rng.integers(2, 5))
            circuit = _random_tail(rng, num_qubits, int(rng.integers(1, 60)))
            streamed = _assert_matches_legacy(circuit)
            assert circuits_equivalent(circuit, streamed, tolerance=1e-6)

    def test_random_trotter_tails(self, rng):
        # mirrored V-blocks between adjacent terms: heavy cancellation load
        for _ in range(10):
            terms = random_pauli_terms(rng, 4, int(rng.integers(2, 9)))
            circuit = synthesize_trotter_circuit(terms)
            _assert_matches_legacy(circuit)

    def test_streaming_is_idempotent(self, rng):
        for _ in range(20):
            circuit = _random_tail(rng, 3, int(rng.integers(1, 50)))
            once = streaming_peephole_optimize(circuit)
            twice = streaming_peephole_optimize(once)
            assert list(once) == list(twice)


class TestSymmetricGates:
    """cz/swap/rzz act on unordered pairs: reversed listings must match."""

    def test_reversed_cz_cancels_through_commuting_rotation(self):
        circuit = QuantumCircuit(2)
        circuit.cz(0, 1).rz(0.4, 0).cz(1, 0)
        streamed = _assert_matches_legacy(circuit)
        assert streamed.cx_count() == 0

    def test_reversed_swap_cancels(self):
        circuit = QuantumCircuit(3)
        circuit.swap(2, 0).swap(0, 2)
        assert len(streaming_peephole_optimize(circuit)) == 0

    def test_reversed_rzz_merges_at_earliest_position(self):
        circuit = QuantumCircuit(2)
        circuit.rzz(0.3, 0, 1).rzz(0.4, 1, 0)
        streamed = _assert_matches_legacy(circuit)
        assert len(streamed) == 1
        assert streamed.gates[0].qubits == (0, 1)
        assert streamed.gates[0].params[0] == pytest.approx(0.7)

    def test_reversed_opposite_rzz_cancel(self):
        circuit = QuantumCircuit(2)
        circuit.rzz(0.3, 0, 1).rzz(-0.3, 1, 0)
        assert len(streaming_peephole_optimize(circuit)) == 0

    def test_reversed_cx_does_not_cancel(self):
        circuit = QuantumCircuit(2)
        circuit.cx(0, 1).cx(1, 0)
        streamed = _assert_matches_legacy(circuit)
        assert streamed.cx_count() == 2


class TestAngleEdgeCases:
    def test_near_zero_rotation_dropped_on_arrival(self):
        circuit = QuantumCircuit(1)
        circuit.rz(1e-13, 0)
        assert len(streaming_peephole_optimize(circuit)) == 0

    def test_merge_to_exact_zero_cancels_and_unblocks(self):
        # the zero-merged rotation disappears; the CNOTs around it cancel
        circuit = QuantumCircuit(2)
        circuit.cx(0, 1).rz(0.8, 1)
        circuit.append(Gate("rz", (1,), (-0.8,)))
        circuit.cx(0, 1)
        streamed = _assert_matches_legacy(circuit)
        assert len(streamed) == 0

    def test_angle_beyond_two_pi_normalizes(self):
        circuit = QuantumCircuit(1)
        circuit.rz(3.0 * math.pi, 0)
        streamed = _assert_matches_legacy(circuit)
        assert len(streamed) == 1
        assert streamed.gates[0].params[0] == pytest.approx(-math.pi)

    def test_merged_angle_beyond_two_pi_normalizes(self):
        circuit = QuantumCircuit(1)
        circuit.rx(3.5, 0).rx(3.5, 0)
        streamed = _assert_matches_legacy(circuit)
        assert len(streamed) == 1
        assert streamed.gates[0].params[0] == pytest.approx(
            math.remainder(7.0, 4.0 * math.pi)
        )

    def test_full_four_pi_turn_vanishes(self):
        circuit = QuantumCircuit(1)
        circuit.rz(2.0 * math.pi, 0).rz(2.0 * math.pi, 0)
        assert len(streaming_peephole_optimize(circuit)) == 0

    def test_many_rotations_merge_into_first(self):
        circuit = QuantumCircuit(2)
        circuit.rz(0.1, 0).cz(0, 1).rz(0.2, 0).rz(0.3, 0)
        streamed = _assert_matches_legacy(circuit)
        assert streamed.count_ops()["rz"] == 1
        assert streamed.gates[0].name == "rz"
        assert streamed.gates[0].params[0] == pytest.approx(0.6)


class TestBeyondLegacyIterationCap:
    def test_deep_palindrome_needs_more_than_twenty_sweeps(self):
        # alternating non-commuting self-inverse layers: the legacy engine
        # peels exactly one palindrome layer per sweep
        layers = [Gate("h" if depth % 2 else "x", (0,)) for depth in range(25)]
        circuit = QuantumCircuit(1, layers + list(reversed(layers)))
        capped = peephole_optimize(circuit)  # legacy default: 20 sweeps
        assert len(capped) == 10  # five layers it never reached
        uncapped = peephole_optimize(circuit, max_iterations=64)
        assert len(uncapped) == 0
        # the streaming engine has no cap: one pass reaches the true fixpoint
        assert len(streaming_peephole_optimize(circuit)) == 0

    def test_two_qubit_palindrome(self):
        layers = [
            Gate("cx", (0, 1)) if depth % 2 else Gate("h", (1,)) for depth in range(23)
        ]
        circuit = QuantumCircuit(2, layers + list(reversed(layers)))
        streamed = streaming_peephole_optimize(circuit)
        assert len(streamed) == 0
        assert len(peephole_optimize(circuit, max_iterations=64)) == 0


class TestGateStreamOptimizer:
    def test_counters_track_raw_stream(self):
        optimizer = GateStreamOptimizer(2)
        optimizer.extend(
            [Gate("cx", (0, 1)), Gate("cx", (0, 1)), Gate("swap", (0, 1)), Gate("i", (0,))]
        )
        assert optimizer.appended == 4
        assert optimizer.appended_cx == 5  # 2 cx + swap counted as 3
        assert len(optimizer) == 1  # the two CNOTs cancelled, i dropped
        assert [gate.name for gate in optimizer.gates()] == ["swap"]

    def test_rejects_empty_register(self):
        with pytest.raises(CircuitError):
            GateStreamOptimizer(0)

    def test_compaction_keeps_result_correct(self, rng):
        # drive far more kills than the compaction threshold
        optimizer = GateStreamOptimizer(2)
        for _ in range(2000):
            optimizer.append(Gate("h", (0,)))
            optimizer.append(Gate("h", (0,)))
        optimizer.append(Gate("h", (0,)))
        assert len(optimizer) == 1
        assert [gate.name for gate in optimizer.gates()] == ["h"]


class TestCircuitBuilder:
    def test_builder_matches_post_hoc_streaming(self, rng):
        circuit = _random_tail(rng, 3, 40)
        builder = QuantumCircuit.builder(3)
        builder.extend(circuit)
        assert list(builder.build()) == list(streaming_peephole_optimize(circuit))

    def test_builder_bounds_check(self):
        builder = QuantumCircuit.builder(2)
        with pytest.raises(CircuitError):
            builder.append(Gate("h", (5,)))

    def test_plain_builder_keeps_raw_gates(self):
        builder = QuantumCircuit.builder(1, peephole=False)
        builder.append(Gate("h", (0,))).append(Gate("h", (0,)))
        assert not builder.optimizing
        assert len(builder.build()) == 2

    def test_builder_counters(self):
        builder = QuantumCircuit.builder(2)
        builder.extend([Gate("cx", (0, 1)), Gate("cx", (0, 1))])
        assert builder.appended == 2
        assert builder.appended_cx == 2
        assert len(builder) == 0


class TestEmissionFusedExtraction:
    def test_fused_matches_unfused_plus_legacy_peephole(self, rng):
        for _ in range(5):
            terms = random_pauli_terms(rng, 4, 6)
            fused = CliffordExtractor(fuse_peephole=True).extract(terms)
            unfused = CliffordExtractor().extract(terms)
            reference = peephole_optimize(
                unfused.optimized_circuit, max_iterations=_LEGACY_FIXPOINT_ITERATIONS
            )
            assert len(fused.optimized_circuit) == len(reference)
            assert circuits_equivalent(fused.optimized_circuit, reference, tolerance=1e-6)
            # the Clifford tail is built from the raw left halves: identical
            assert fused.extracted_clifford.gates == unfused.extracted_clifford.gates
            assert fused.rotation_count == unfused.rotation_count
            assert fused.metadata["peephole_fused"]
            assert fused.metadata["pre_optimization_cx"] == unfused.optimized_circuit.cx_count()

    def test_preset_pipeline_records_fused_fixpoint(self, rng):
        terms = random_pauli_terms(rng, 3, 5)
        result = repro.compile(terms, level=3)
        assert result.metadata["peephole_fixpoint"]
        assert "pre_optimization_cx" in result.metadata

    def test_streaming_peephole_pass_skips_fused_circuit(self, rng):
        terms = random_pauli_terms(rng, 3, 5)
        fused = Pipeline(
            [GroupCommuting(), CliffordExtraction(fuse_peephole=True), Peephole()]
        ).run(terms)
        rescanned = Pipeline(
            [GroupCommuting(), CliffordExtraction(), Peephole()]
        ).run(terms)
        assert fused.circuit.gates == rescanned.circuit.gates

    def test_legacy_engine_still_available(self, rng):
        terms = random_pauli_terms(rng, 3, 5)
        legacy = Pipeline(
            [GroupCommuting(), CliffordExtraction(), Peephole(engine="legacy")]
        ).run(terms)
        streaming = repro.compile(terms, level=3)
        assert legacy.circuit.gates == streaming.circuit.gates

    def test_unknown_engine_rejected(self):
        with pytest.raises(CompilerError):
            Peephole(engine="vectorized")

    def test_fused_naive_synthesis(self, rng):
        from repro.compiler.passes import NaiveSynthesis

        terms = random_pauli_terms(rng, 3, 5)
        fused = Pipeline([NaiveSynthesis(fuse_peephole=True)]).run(terms)
        reference = peephole_optimize(
            synthesize_trotter_circuit(terms), max_iterations=_LEGACY_FIXPOINT_ITERATIONS
        )
        assert len(fused.circuit) == len(reference)
        assert circuits_equivalent(fused.circuit, reference, tolerance=1e-6)
        assert fused.metadata["peephole_fixpoint"]

    def test_fused_trotter_synthesis(self, rng):
        terms = random_pauli_terms(rng, 3, 6)
        fused = synthesize_trotter_circuit(terms, peephole=True)
        reference = peephole_optimize(
            synthesize_trotter_circuit(terms), max_iterations=_LEGACY_FIXPOINT_ITERATIONS
        )
        assert len(fused) == len(reference)
        assert circuits_equivalent(fused, reference, tolerance=1e-6)
