"""Shared test helpers: random circuit/Pauli generators and matrix utilities."""

from __future__ import annotations

import numpy as np
import pytest

from repro.circuits.circuit import QuantumCircuit
from repro.circuits.gate import Gate
from repro.paulis.pauli import PauliString
from repro.paulis.term import PauliTerm

CLIFFORD_GATE_POOL_1Q = ["h", "s", "sdg", "x", "y", "z", "sx", "sxdg"]
CLIFFORD_GATE_POOL_2Q = ["cx", "cz", "swap"]
PAULI_LETTERS = "IXYZ"


def random_pauli(rng: np.random.Generator, num_qubits: int, allow_sign: bool = True) -> PauliString:
    label = "".join(rng.choice(list(PAULI_LETTERS)) for _ in range(num_qubits))
    sign = int(rng.choice([1, -1])) if allow_sign else 1
    return PauliString.from_label(label, sign=sign)


def random_nontrivial_pauli(rng: np.random.Generator, num_qubits: int) -> PauliString:
    while True:
        pauli = random_pauli(rng, num_qubits)
        if not pauli.is_identity():
            return pauli


def random_clifford_circuit(
    rng: np.random.Generator, num_qubits: int, num_gates: int
) -> QuantumCircuit:
    circuit = QuantumCircuit(num_qubits)
    for _ in range(num_gates):
        if num_qubits > 1 and rng.random() < 0.4:
            name = str(rng.choice(CLIFFORD_GATE_POOL_2Q))
            qubits = rng.choice(num_qubits, size=2, replace=False)
            circuit.append(Gate(name, (int(qubits[0]), int(qubits[1]))))
        else:
            name = str(rng.choice(CLIFFORD_GATE_POOL_1Q))
            qubit = int(rng.integers(num_qubits))
            circuit.append(Gate(name, (qubit,)))
    return circuit


def random_pauli_terms(
    rng: np.random.Generator, num_qubits: int, num_terms: int
) -> list[PauliTerm]:
    terms = []
    for _ in range(num_terms):
        pauli = random_nontrivial_pauli(rng, num_qubits).bare()
        angle = float(rng.uniform(-np.pi, np.pi))
        terms.append(PauliTerm(pauli, angle))
    return terms


def pauli_rotation_matrix(term: PauliTerm) -> np.ndarray:
    """Exact matrix of exp(-i * theta/2 * P) via eigendecomposition of P."""
    matrix = term.pauli.to_matrix()
    dimension = matrix.shape[0]
    identity = np.eye(dimension)
    # P**2 = I for Hermitian Paulis, so the exponential has a closed form.
    theta = term.coefficient
    return np.cos(theta / 2) * identity - 1j * np.sin(theta / 2) * matrix


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)
