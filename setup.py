"""Setuptools entry point.

Kept alongside ``pyproject.toml`` so that editable installs also work on
environments whose setuptools/pip versions predate PEP 660 wheel-based
editable installs (no ``wheel`` package available offline).
"""

from setuptools import setup

setup()
